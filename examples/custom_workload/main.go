// Custom workload: author a new application model against the public
// API and run it through the framework. The workload is a toy
// molecular-dynamics-like code: a big cold trajectory buffer, hot
// neighbour lists (gathered), hot force arrays, and per-iteration
// scratch buffers.
//
//	go run ./examples/custom_workload
package main

import (
	"fmt"
	"log"

	hm "repro"
)

func buildWorkload() *hm.Workload {
	return &hm.Workload{
		Name: "minimd", Program: "minimd", Language: "C++", Parallelism: "MPI+OpenMP",
		LinesOfCode: 3000, Ranks: 64, Threads: 4,
		FOMName: "Steps/s", FOMUnit: "steps/s", WorkPerIteration: 1,
		Iterations: 10,
		Objects: []hm.ObjectSpec{
			{Name: "trajectory", Class: hm.Dynamic, Size: 400 * hm.MB,
				SitePath: []string{"main", "setup", "allocTrajectory"}},
			{Name: "neighbors", Class: hm.Dynamic, Size: 48 * hm.MB,
				SitePath: []string{"main", "setup", "allocNeighbors"}},
			{Name: "forces", Class: hm.Dynamic, Size: 32 * hm.MB,
				SitePath: []string{"main", "setup", "allocForces"}},
			{Name: "positions", Class: hm.Dynamic, Size: 32 * hm.MB,
				SitePath: []string{"main", "setup", "allocPositions"}},
			{Name: "scratch", Class: hm.Dynamic, Lifetime: hm.LifetimeIteration,
				Size: 4 * hm.MB, SitePath: []string{"main", "step", "allocScratch"}},
			{Name: "cell.statics", Class: hm.Static, Size: 16 * hm.MB},
		},
		IterPhases: []hm.Phase{
			{Routine: "force_compute", Instructions: 200000, Touches: []hm.Touch{
				{Object: "neighbors", Pattern: hm.GatherRandom, Refs: 30000},
				{Object: "forces", Pattern: hm.Sequential, Refs: 25000},
				{Object: "positions", Pattern: hm.GatherRandom, Refs: 20000},
				{Object: "scratch", Pattern: hm.Sequential, Refs: 8000},
			}},
			{Routine: "integrate", Instructions: 80000, Touches: []hm.Touch{
				{Object: "positions", Pattern: hm.Sequential, Refs: 10000},
				{Object: "trajectory", Pattern: hm.Sequential, Refs: 3000},
				{Object: "cell.statics", Pattern: hm.Sequential, Refs: 4000},
			}},
		},
	}
}

func main() {
	w := buildWorkload()
	if err := w.Validate(); err != nil {
		log.Fatal(err)
	}
	machine := hm.PerRankMachine(hm.DefaultKNL(), w.Ranks, w.Threads)

	ddr, err := hm.RunBaseline(w, hm.BaselineDDR, hm.ExecuteConfig{Machine: machine, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on DDR: %.3f %s\n", w.Name, ddr.FOM, ddr.FOMUnit)

	for _, budget := range []int64{32 * hm.MB, 64 * hm.MB, 128 * hm.MB} {
		pr, err := hm.Pipeline(w, hm.PipelineConfig{
			Machine: machine, Seed: 3, Budget: budget, Strategy: hm.StrategyDensity,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("framework @%3d MB: %.3f %s (%+.1f%%), promoted:",
			budget/hm.MB, pr.Run.FOM, pr.Run.FOMUnit,
			hm.ImprovementPct(pr.Run.FOM, ddr.FOM))
		for _, e := range pr.Report.Entries {
			if !e.Static {
				fmt.Printf(" %dMB", e.Size/hm.MB)
			}
		}
		fmt.Println()
	}
	fmt.Println("\nthe gathered neighbour/position arrays are selected first —")
	fmt.Println("irregular accesses profit most from MCDRAM, as in the paper.")
}
