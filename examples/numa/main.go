// Command numa demonstrates topology-aware placement on a dual-socket
// rank: near DDR + an NVM floor on socket 0 (where the rank is
// pinned), and an HBM-class tier on socket 1 that is raw-faster than
// DDR but slower end-to-end once the cross-socket distance is priced
// in (bandwidth divided by the hop, latency multiplied by it).
//
// Two advisors compete on the SAME machine:
//
//   - topology-blind: packs by raw RelativePerf, so the hot set is
//     shipped across the link to remote HBM — and the run loses to
//     even the placement-oblivious baseline.
//   - topology-aware: packs by RelativePerf/Distance, keeps the hot
//     set on near DDR, uses remote HBM only as overflow above the
//     NVM floor, and wins.
//
// The second half shows the bandwidth-contention migration gate: on a
// machine whose DDR and MCDRAM share a controller group, the online
// placer prices migrations against the epoch's concurrent traffic and
// refuses a move that the idle-bandwidth model would have taken.
//
// Run with: go run ./examples/numa
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	hm "repro"
	"repro/internal/units"
)

func main() {
	w := hm.NTierDemoWorkload()
	m := hm.PerRankMachine(hm.DualSocketHBM(), w.Ranks, w.Threads)

	fmt.Println("dual-socket rank, pinned to socket 0:")
	for _, t := range m.Tiers {
		fmt.Printf("  %-4s %8s  domain %d  raw %.2f  distance %.1f  effective %.2f\n",
			t.Name, units.HumanBytes(t.Capacity), t.Domain,
			t.RelativePerf, m.TierDistance(t), m.EffectivePerf(t))
	}
	fmt.Println()

	cfg := hm.ExecuteConfig{Machine: m, Seed: 42}
	ddr, err := hm.RunBaseline(w, hm.BaselineDDR, cfg)
	check(err)

	aware := hm.MemoryConfigFor(m, 0)
	awareRun, err := hm.Pipeline(w, hm.PipelineConfig{Machine: m, Seed: 42, Memory: &aware})
	check(err)

	blind := aware
	blind.Tiers = append([]hm.TierConfig{}, aware.Tiers...)
	for i := range blind.Tiers {
		blind.Tiers[i].Distance = 0 // strip the topology: raw-perf packing
	}
	blindRun, err := hm.Pipeline(w, hm.PipelineConfig{Machine: m, Seed: 42, Memory: &blind})
	check(err)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "placement\t%s\tHBM HWM\tNVM HWM\tvs DDR\n", w.FOMUnit)
	row := func(label string, res *hm.RunResult) {
		fmt.Fprintf(tw, "%s\t%.3f\t%s\t%s\t%+.1f%%\n",
			label, res.FOM,
			units.HumanBytes(res.TierHWMs[hm.TierHBM]),
			units.HumanBytes(res.TierHWMs[hm.TierNVM]),
			hm.ImprovementPct(res.FOM, ddr.FOM))
	}
	row("ddr (oblivious)", ddr)
	row("topology-blind advisor", blindRun.Run)
	row("topology-aware advisor", awareRun.Run)
	tw.Flush()

	switch {
	case awareRun.Run.FOM > ddr.FOM && awareRun.Run.FOM > blindRun.Run.FOM:
		fmt.Println("\nverdict: distance pricing keeps the hot set near — remote raw speed is not end-to-end speed")
	default:
		fmt.Println("\nverdict: unexpected ordering — inspect the table above")
	}

	// Contention gate, end to end: the same online run with dedicated
	// vs shared DDR+MCDRAM controllers.
	ps, err := hm.WorkloadByName("phaseshift")
	check(err)
	plainM := hm.MachineFor(ps)
	sharedM := hm.WithSharedControllers(plainM, 1, hm.TierDDR, hm.TierMCDRAM)
	plain, err := hm.RunOnline(ps, hm.OnlineConfig{Machine: plainM, Seed: 21, Budget: 16 * units.MB})
	check(err)
	shared, err := hm.RunOnline(ps, hm.OnlineConfig{Machine: sharedM, Seed: 21, Budget: 16 * units.MB})
	check(err)
	fmt.Printf("\nonline migration gate on phaseshift (budget 16 MB):\n")
	fmt.Printf("  dedicated controllers: %2d migrations, %3d MB moved\n",
		plain.Migrations, plain.MigratedBytes/units.MB)
	fmt.Printf("  shared DDR+MCDRAM:     %2d migrations, %3d MB moved (gate prices the concurrent stream)\n",
		shared.Migrations, shared.MigratedBytes/units.MB)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "numa:", err)
		os.Exit(1)
	}
}
