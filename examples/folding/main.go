// Folding: the Figure 5 analysis — fold the sparse PEBS samples of
// many SNAP iterations into one canonical iteration and plot (as
// ASCII) the routine timeline, the referenced address bands and the
// MIPS evolution. Under the framework placement the MIPS rate
// collapses inside outer_src_calc, whose register spills live on the
// stack where the interposer cannot reach; under numactl the stack is
// in MCDRAM and the dip disappears.
//
//	go run ./examples/folding
package main

import (
	"fmt"
	"log"
	"strings"

	hm "repro"
)

func main() {
	w, err := hm.WorkloadByName("snap")
	if err != nil {
		log.Fatal(err)
	}
	m := hm.MachineFor(w)

	// Build the framework placement (stages 1-3).
	pr, err := hm.Pipeline(w, hm.PipelineConfig{
		Machine: m, Seed: 31, Budget: 256 * hm.MB, Strategy: hm.StrategyMisses(0),
		SamplePeriod: 600,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Re-run monitored under the framework placement and fold.
	tr, _, err := hm.ProfileWithPolicy(w, hm.ProfileConfig{
		Machine: m, Seed: 33, SamplePeriod: 600,
	}, pr.Report)
	if err != nil {
		log.Fatal(err)
	}
	f, err := hm.Fold(tr, 40, m.ClockHz)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("folded %d iterations; canonical iteration = %.2f ms\n\n",
		f.Iterations, f.MeanIterationCycles.Seconds(m.ClockHz)*1e3)

	fmt.Println("routine timeline (fraction of iteration):")
	for _, s := range f.Spans {
		width := int((s.EndFrac - s.StartFrac) * 60)
		pad := int(s.StartFrac * 60)
		fmt.Printf("  %-16s %s%s\n", s.Routine, strings.Repeat(" ", pad), strings.Repeat("=", max(width, 1)))
	}

	fmt.Println("\nMIPS evolution (the outer_src_calc dip is the paper's Fig. 5 signature):")
	maxMIPS := f.GlobalMaxMIPS()
	for _, b := range f.Bins {
		bar := int(b.MIPS / maxMIPS * 60)
		fmt.Printf("  %4.2f %7.0f |%s\n", b.StartFrac, b.MIPS, strings.Repeat("#", bar))
	}

	minOuter, _, _ := f.MinMIPSIn("outer_src_calc")
	fmt.Printf("\nouter_src_calc min MIPS = %.0f (%.0f%% of peak %.0f)\n",
		minOuter, minOuter/maxMIPS*100, maxMIPS)
	fmt.Printf("address points folded: %d samples across %d iterations\n",
		len(f.Points), f.Iterations)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
