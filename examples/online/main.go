// Online: the paper's Section V future work made concrete — compare
// the offline framework (profile once, advise once, execute once)
// against the online adaptive placer (epoch-driven re-advising with
// live tier migration) and MCDRAM cache mode, across the Table I
// workloads and the phase-shifting adversary.
//
// Expected shape of the results:
//
//   - phaseshift @ one-group budget: the hot set rotates between
//     object groups, so any one-shot placement serves at most one
//     slot from fast memory; the online placer follows the rotation
//     (three migrating epochs) and beats every software placement at
//     the same budget. Cache mode, which adapts per access and spends
//     the whole MCDRAM tier rather than a budget, remains the
//     hardware reference — the paper's Lulesh lesson generalized.
//
//   - phaseshift @ everything-fits budget: adaptivity buys nothing;
//     the profile-guided framework places all groups before first
//     touch and wins.
//
//   - stable Table I apps (e.g. hpcg): the hot set never moves, so
//     the hysteresis gate keeps migration traffic at zero. In this
//     scaled simulation a mid-run bulk move cannot amortize, so the
//     online run tracks DDR (minus interposition overhead) while the
//     profile-guided framework keeps its edge.
//
//     go run ./examples/online
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	hm "repro"
)

func main() {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "app\tbudget MB\tDDR\tstatic\tonline\tcache\tmigrated MB\twinner")

	type job struct {
		name   string
		budget int64
	}
	jobs := []job{
		// The adversary at two budgets: one rotating group (adaptivity
		// required) and everything-fits (adaptivity unnecessary).
		{"phaseshift", 16 * hm.MB},
		{"phaseshift", 64 * hm.MB},
	}
	for _, w := range hm.Workloads() {
		budgets := hm.BudgetsFor(w)
		jobs = append(jobs, job{w.Name, budgets[len(budgets)-1]})
	}

	for _, j := range jobs {
		w, err := hm.WorkloadByName(j.name)
		if err != nil {
			log.Fatal(err)
		}
		m := hm.MachineFor(w)
		cfg := hm.ExecuteConfig{Machine: m, Seed: 21}

		ddr, err := hm.RunBaseline(w, hm.BaselineDDR, cfg)
		if err != nil {
			log.Fatal(err)
		}
		cache, err := hm.RunBaseline(w, hm.BaselineCacheMode, cfg)
		if err != nil {
			log.Fatal(err)
		}
		pr, err := hm.Pipeline(w, hm.PipelineConfig{
			Machine: m, Seed: 21, Budget: j.budget, Strategy: hm.StrategyMisses(0),
		})
		if err != nil {
			log.Fatal(err)
		}
		onl, err := hm.RunOnline(w, hm.OnlineConfig{Machine: m, Seed: 21, Budget: j.budget})
		if err != nil {
			log.Fatal(err)
		}

		winner, top := "ddr", ddr.FOM
		for _, c := range []struct {
			name string
			fom  float64
		}{
			{"static", pr.Run.FOM}, {"online", onl.FOM}, {"cache", cache.FOM},
		} {
			if c.fom > top {
				winner, top = c.name, c.fom
			}
		}
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\t%.3f\t%.3f\t%d\t%s\n",
			j.name, j.budget/hm.MB, ddr.FOM, pr.Run.FOM, onl.FOM, cache.FOM,
			onl.MigratedBytes/hm.MB, winner)
	}
	tw.Flush()

	fmt.Println("\nphaseshift @16MB is the online subsystem's home turf: the static")
	fmt.Println("advisor funds one rotation slot, the online placer funds them all,")
	fmt.Println("three migrating epochs apart. On stable workloads the hysteresis")
	fmt.Println("gate refuses unamortizable moves and migration traffic stays zero;")
	fmt.Println("when everything fits the budget, profiling ahead of time wins.")
}
