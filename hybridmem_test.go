package hybridmem

import (
	"bytes"
	"testing"
)

// TestPipelineEndToEnd drives all four stages on HPCG and checks every
// stage artifact is coherent.
func TestPipelineEndToEnd(t *testing.T) {
	w, err := WorkloadByName("hpcg")
	if err != nil {
		t.Fatal(err)
	}
	m := MachineFor(w)
	pr, err := Pipeline(w, PipelineConfig{
		Machine: m, Seed: 5, Budget: 128 * MB, Strategy: StrategyMisses(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Trace == nil || len(pr.Trace.Records) == 0 {
		t.Fatal("stage 1 produced no trace")
	}
	if pr.Profile == nil || len(pr.Profile.Objects) == 0 {
		t.Fatal("stage 2 produced no profile")
	}
	if pr.Profile.TotalSamples < 100 {
		t.Fatalf("too few samples: %d", pr.Profile.TotalSamples)
	}
	if pr.Report == nil || len(pr.Report.Entries) == 0 {
		t.Fatal("stage 3 selected nothing")
	}
	if pr.Run.HBWHWM <= 0 {
		t.Fatal("stage 4 placed nothing in fast memory")
	}
	if pr.Run.HBWHWM > 128*MB {
		t.Fatalf("budget exceeded: HWM = %d", pr.Run.HBWHWM)
	}
	// The framework must beat the profiling (DDR) run.
	if pr.Run.FOM <= pr.ProfilingRun.FOM {
		t.Fatalf("framework (%v) not faster than DDR profile (%v)", pr.Run.FOM, pr.ProfilingRun.FOM)
	}
}

func TestPipelineRequiresBudget(t *testing.T) {
	w, _ := WorkloadByName("cgpop")
	if _, err := Pipeline(w, PipelineConfig{Machine: MachineFor(w)}); err == nil {
		t.Fatal("pipeline without budget accepted")
	}
}

func TestTraceSurvivesSerialization(t *testing.T) {
	// The stages exchange files in the CLI tools; the library results
	// must round-trip through the codecs unchanged.
	w, _ := WorkloadByName("cgpop")
	m := MachineFor(w)
	tr, _, err := Profile(w, ProfileConfig{Machine: m, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	prof1, err := Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	prof2, err := Analyze(tr2)
	if err != nil {
		t.Fatal(err)
	}
	if prof1.TotalSamples != prof2.TotalSamples || len(prof1.Objects) != len(prof2.Objects) {
		t.Fatal("profile differs after trace serialization")
	}
	rep, err := Advise(prof2, 64*MB, StrategyDensity)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	rep2, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Entries) != len(rep.Entries) || rep2.Budget != rep.Budget {
		t.Fatal("report differs after serialization")
	}
}

func TestAdviseNilProfile(t *testing.T) {
	if _, err := Advise(nil, MB, StrategyDensity); err == nil {
		t.Fatal("nil profile accepted")
	}
}

func TestRunBaselineUnknown(t *testing.T) {
	w, _ := WorkloadByName("cgpop")
	if _, err := RunBaseline(w, Baseline(99), ExecuteConfig{Machine: MachineFor(w)}); err == nil {
		t.Fatal("unknown baseline accepted")
	}
}

func TestBaselineString(t *testing.T) {
	for b, want := range map[Baseline]string{
		BaselineDDR: "ddr", BaselineNumactl: "numactl",
		BaselineAutoHBW: "autohbw/1m", BaselineCacheMode: "cache",
		BaselineOnline: "online", Baseline(9): "baseline(9)",
	} {
		if b.String() != want {
			t.Errorf("Baseline(%d) = %q, want %q", b, b.String(), want)
		}
	}
}

func TestWorkloadCatalogAccessors(t *testing.T) {
	if len(Workloads()) != 8 {
		t.Fatal("catalog should have 8 workloads")
	}
	if len(WorkloadNames()) != 9 {
		t.Fatal("names should have 9 entries (Table I plus phaseshift)")
	}
	if _, err := WorkloadByName("bogus"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if StreamWorkload().Name != "stream" {
		t.Fatal("stream workload broken")
	}
}

func TestMetricsHelpers(t *testing.T) {
	if DeltaFOMPerMB(110, 100, 32*MB) <= 0 {
		t.Fatal("DeltaFOMPerMB broken")
	}
	if ImprovementPct(120, 100) != 20 {
		t.Fatal("ImprovementPct broken")
	}
}

func TestPredictAndPatternAPI(t *testing.T) {
	w, _ := WorkloadByName("hpcg")
	m := MachineFor(w)
	tr, _, err := Profile(w, ProfileConfig{Machine: m, Seed: 5, SamplePeriod: 500})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Pattern classification through the public API.
	patterns := ClassifyPatterns(prof, tr)
	if len(patterns) == 0 {
		t.Fatal("no patterns classified")
	}
	regular, irregular := 0, 0
	for _, p := range patterns {
		switch p {
		case PatternRegular:
			regular++
		case PatternIrregular:
			irregular++
		}
	}
	if regular == 0 || irregular == 0 {
		t.Fatalf("expected both classes: regular=%d irregular=%d", regular, irregular)
	}
	// Pattern-aware advising runs end to end.
	rep, err := Advise(prof, 128*MB, StrategyPatternAware(patterns))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) == 0 {
		t.Fatal("pattern-aware strategy selected nothing")
	}
	// Prediction screens budgets in the right order.
	var reports []*PlacementReport
	for _, b := range []int64{32 * MB, 256 * MB} {
		r, err := Advise(prof, b, StrategyMisses(0))
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, r)
	}
	order, preds, err := RankPlacements(tr, reports, m)
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != 1 {
		t.Fatalf("prediction ranked 32 MB above 256 MB for HPCG: %v (%v vs %v)",
			order, preds[0].SpeedupVsDDR, preds[1].SpeedupVsDDR)
	}
	single, err := PredictPlacement(tr, reports[1], m)
	if err != nil {
		t.Fatal(err)
	}
	if single.SpeedupVsDDR <= 1 {
		t.Fatalf("predicted speedup = %v", single.SpeedupVsDDR)
	}
}
