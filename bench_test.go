package hybridmem

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations for the design choices DESIGN.md calls
// out. Each benchmark executes the same simulation the corresponding
// cmd/experiments mode prints, and reports the figure's headline
// quantity as a custom metric so `go test -bench` output carries the
// reproduced series:
//
//	Figure 1  -> GB/s            (BenchmarkFigure1StreamTriad)
//	Figure 3  -> modeled µs      (BenchmarkFigure3UnwindTranslate)
//	Table I   -> overhead %      (BenchmarkTableICharacteristics)
//	Figure 4  -> FOM & vs-DDR %  (BenchmarkFigure4)
//	Figure 5  -> fold + dip %    (BenchmarkFigure5Folding)
//
// Run everything:  go test -bench=. -benchmem

import (
	"fmt"
	"testing"

	"repro/internal/advisor"
	"repro/internal/alloc"
	"repro/internal/callstack"
	"repro/internal/interpose"
	"repro/internal/mem"
	"repro/internal/units"
	"repro/internal/xrand"
)

// BenchmarkFigure1StreamTriad regenerates the STREAM bandwidth curves
// at three representative core counts per memory configuration.
func BenchmarkFigure1StreamTriad(b *testing.B) {
	w := StreamWorkload()
	node := DefaultKNL()
	for _, cores := range []int{1, 16, 68} {
		for _, bl := range []Baseline{BaselineDDR, BaselineNumactl, BaselineCacheMode} {
			name := fmt.Sprintf("%s/cores-%d", bl, cores)
			b.Run(name, func(b *testing.B) {
				var bw float64
				for i := 0; i < b.N; i++ {
					res, err := RunBaseline(w, bl, ExecuteConfig{Machine: node, Cores: cores, Seed: 7})
					if err != nil {
						b.Fatal(err)
					}
					bw = res.FOM
				}
				b.ReportMetric(bw, "GB/s")
			})
		}
	}
}

// BenchmarkFigure3UnwindTranslate measures the real lookup work of
// call-stack unwinding and translation per depth and reports the
// modeled microseconds of Figure 3 (crossover beyond depth 6).
func BenchmarkFigure3UnwindTranslate(b *testing.B) {
	prog := callstack.NewProgram("fig3", xrand.New(1))
	frames := []string{"main", "a", "b", "c", "d", "e", "f", "g", "h"}
	for depth := 1; depth <= 9; depth++ {
		stack := prog.Site(frames[:depth]...)
		b.Run(fmt.Sprintf("unwind/depth-%d", depth), func(b *testing.B) {
			dst := make(callstack.Stack, len(stack))
			for i := 0; i < b.N; i++ {
				copy(dst, stack)
				_ = dst.Fingerprint()
			}
			b.ReportMetric(callstack.UnwindCost(depth).Micros(units.DefaultClockHz), "modeled-µs")
		})
		b.Run(fmt.Sprintf("translate/depth-%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = prog.Table.Translate(stack)
			}
			b.ReportMetric(callstack.TranslateCost(depth).Micros(units.DefaultClockHz), "modeled-µs")
		})
	}
}

// BenchmarkTableICharacteristics runs the monitored (Extrae) execution
// of every application and reports the Table I monitoring overhead.
func BenchmarkTableICharacteristics(b *testing.B) {
	for _, w := range Workloads() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			m := MachineFor(w)
			var overheadPct, samples float64
			for i := 0; i < b.N; i++ {
				_, res, err := Profile(w, ProfileConfig{Machine: m, Seed: 11})
				if err != nil {
					b.Fatal(err)
				}
				overheadPct = res.MonitorOverheadFraction() * 100
				samples = float64(res.Samples)
			}
			b.ReportMetric(overheadPct, "overhead-%")
			b.ReportMetric(samples, "samples")
		})
	}
}

// BenchmarkFigure4 regenerates, per application, the DDR reference,
// the cache-mode baseline and the framework at the largest swept
// budget, reporting the improvement over DDR.
func BenchmarkFigure4(b *testing.B) {
	for _, w := range Workloads() {
		w := w
		m := MachineFor(w)
		budgets := BudgetsFor(w)
		budget := budgets[len(budgets)-1]
		b.Run(w.Name+"/ddr", func(b *testing.B) {
			var fom float64
			for i := 0; i < b.N; i++ {
				res, err := RunBaseline(w, BaselineDDR, ExecuteConfig{Machine: m, Seed: 21})
				if err != nil {
					b.Fatal(err)
				}
				fom = res.FOM
			}
			b.ReportMetric(fom, "FOM")
		})
		b.Run(w.Name+"/cache", func(b *testing.B) {
			var fom float64
			for i := 0; i < b.N; i++ {
				res, err := RunBaseline(w, BaselineCacheMode, ExecuteConfig{Machine: m, Seed: 21})
				if err != nil {
					b.Fatal(err)
				}
				fom = res.FOM
			}
			b.ReportMetric(fom, "FOM")
		})
		b.Run(w.Name+"/framework", func(b *testing.B) {
			var fom float64
			for i := 0; i < b.N; i++ {
				pr, err := Pipeline(w, PipelineConfig{
					Machine: m, Seed: 21, Budget: budget, Strategy: StrategyMisses(0),
				})
				if err != nil {
					b.Fatal(err)
				}
				fom = pr.Run.FOM
			}
			b.ReportMetric(fom, "FOM")
		})
	}
}

// BenchmarkFigure5Folding measures the folding analysis of the SNAP
// framework run and reports the outer_src_calc MIPS dip depth.
func BenchmarkFigure5Folding(b *testing.B) {
	w, err := WorkloadByName("snap")
	if err != nil {
		b.Fatal(err)
	}
	m := MachineFor(w)
	pr, err := Pipeline(w, PipelineConfig{
		Machine: m, Seed: 31, Budget: 256 * MB, Strategy: StrategyMisses(0), SamplePeriod: 600,
	})
	if err != nil {
		b.Fatal(err)
	}
	tr, _, err := ProfileWithPolicy(w, ProfileConfig{Machine: m, Seed: 33, SamplePeriod: 600}, pr.Report)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var dipPct float64
	for i := 0; i < b.N; i++ {
		f, err := Fold(tr, 48, m.ClockHz)
		if err != nil {
			b.Fatal(err)
		}
		minOuter, _, _ := f.MinMIPSIn("outer_src_calc")
		dipPct = minOuter / f.GlobalMaxMIPS() * 100
	}
	b.ReportMetric(dipPct, "dip-%of-peak")
}

// fig4SweepPoints builds the Figure 4 grid for one application: every
// baseline plus the full budget×strategy pipeline plane — the workload
// the sweep engine exists for.
func fig4SweepPoints(w *Workload) []SweepPoint {
	m := MachineFor(w)
	cfg := ExecuteConfig{Machine: m, Seed: 21}
	pts := []SweepPoint{
		BaselinePoint("ddr", w, BaselineDDR, cfg),
		BaselinePoint("numactl", w, BaselineNumactl, cfg),
		BaselinePoint("autohbw", w, BaselineAutoHBW, cfg),
		BaselinePoint("cache", w, BaselineCacheMode, cfg),
	}
	strategies := []struct {
		name string
		s    Strategy
	}{
		{"density", StrategyDensity},
		{"misses0", StrategyMisses(0)},
		{"misses1", StrategyMisses(1)},
		{"misses5", StrategyMisses(5)},
	}
	for _, budget := range BudgetsFor(w) {
		for _, st := range strategies {
			pts = append(pts, PipelinePoint(st.name, w, PipelineConfig{
				Machine: m, Seed: 21, Budget: budget, Strategy: st.s,
			}))
		}
	}
	return pts
}

// BenchmarkSweepFigure4 runs one application's full Figure 4 grid
// through the sweep engine: the profile is computed once, the 16
// advise+execute cells and 4 baselines fan out across the worker pool.
// Compare against BenchmarkSweepFigure4Serial — the naive loop that
// re-profiles per cell — for the speedup the sweep engine buys; the
// FOM metric pins that both produce the same physics.
func BenchmarkSweepFigure4(b *testing.B) {
	w, err := WorkloadByName("minife")
	if err != nil {
		b.Fatal(err)
	}
	var fom float64
	for i := 0; i < b.N; i++ {
		res, err := RunSweep(fig4SweepPoints(w), SweepOptions{})
		if err != nil {
			b.Fatal(err)
		}
		fom = res[len(res)-1].Run.FOM
	}
	b.ReportMetric(fom, "FOM")
}

// BenchmarkSweepFigure4Serial is the pre-sweep reference: the same
// grid as BenchmarkSweepFigure4 executed the way cmd/experiments used
// to — serially, re-running Profile+Analyze for every pipeline cell.
func BenchmarkSweepFigure4Serial(b *testing.B) {
	w, err := WorkloadByName("minife")
	if err != nil {
		b.Fatal(err)
	}
	var fom float64
	for i := 0; i < b.N; i++ {
		for _, p := range fig4SweepPoints(w) {
			var res *RunResult
			var err error
			switch {
			case p.Pipeline != nil:
				var pr *PipelineResult
				pr, err = Pipeline(p.Workload, *p.Pipeline)
				if pr != nil {
					res = pr.Run
				}
			case p.Baseline != nil:
				res, err = RunBaseline(p.Workload, p.Baseline.Baseline, p.Baseline.Config)
			}
			if err != nil {
				b.Fatal(err)
			}
			fom = res.FOM
		}
	}
	b.ReportMetric(fom, "FOM")
}

// BenchmarkOnlineEpochResolve measures the online placer's epoch
// re-solve loop — the path the warm-start seam accelerates: every
// epoch re-runs the waterfall over the live footprint, and epoch N's
// sorted site order seeds epoch N+1's solve. The phaseshift workload
// drives many epochs with a shifting hot set, so both the warm-hit
// and the repack paths execute. Reported metrics come from the run's
// always-on solver counters.
func BenchmarkOnlineEpochResolve(b *testing.B) {
	w, err := WorkloadByName("phaseshift")
	if err != nil {
		b.Fatal(err)
	}
	m := MachineFor(w)
	var metrics map[string]int64
	for i := 0; i < b.N; i++ {
		res, err := RunOnline(w, OnlineConfig{
			Machine: m, Seed: 21, RefScale: 0.25, Budget: 64 * units.MB,
		})
		if err != nil {
			b.Fatal(err)
		}
		metrics = res.Metrics
	}
	b.ReportMetric(float64(metrics["solver_resolves"]), "resolves")
	b.ReportMetric(float64(metrics["solver_warm_hits"]), "warm-hits")
	b.ReportMetric(float64(metrics["solver_objects_repacked"]), "repacked")
}

// --- Ablations ---

// BenchmarkAblationKnapsackExactVsGreedy demonstrates why hmem_advisor
// ships greedy relaxations: the exact pseudo-polynomial DP blows up
// with object count and budget while the greedy packs stay linear.
func BenchmarkAblationKnapsackExactVsGreedy(b *testing.B) {
	r := xrand.New(42)
	objs := make([]advisor.Object, 300)
	for i := range objs {
		objs[i] = advisor.Object{
			ID:     fmt.Sprintf("o%03d", i),
			Size:   int64(r.Intn(64)+1) * units.MB,
			Misses: int64(r.Intn(100000) + 1),
		}
	}
	const budget = 2 * units.GB
	for _, s := range []advisor.Strategy{
		advisor.MissesStrategy{}, advisor.DensityStrategy{}, advisor.ExactDP{},
	} {
		s := s
		b.Run(s.Name(), func(b *testing.B) {
			var moved int64
			for i := 0; i < b.N; i++ {
				moved = advisor.TotalMisses(s.Select(objs, budget))
			}
			b.ReportMetric(float64(moved), "misses-moved")
		})
	}
}

// ablationFixture builds an interpose library over a big heap with one
// selected site for malloc-path microbenchmarks.
func ablationFixture(b *testing.B, opts interpose.Options) (*interpose.Library, callstack.Stack) {
	b.Helper()
	pt := mem.NewPageTable(mem.TierDDR)
	sp := alloc.NewSpace(pt)
	mk, err := alloc.NewMemkind(sp, 64*units.GB, 16*units.GB)
	if err != nil {
		b.Fatal(err)
	}
	prog := callstack.NewProgram("abl", xrand.New(1))
	site := prog.Site("main", "compute", "allocHot")
	rep := &advisor.Report{
		App: "abl", Budget: 16 * units.GB,
		Entries: []advisor.Entry{{
			Tier: "MCDRAM", ID: string(prog.Table.Translate(site)),
			Site: prog.Table.Translate(site), Size: 4 * units.KB, Misses: 100,
		}},
		LBSize: 4 * units.KB, UBSize: 4 * units.KB,
	}
	lib, err := interpose.New(mk, prog, rep, opts)
	if err != nil {
		b.Fatal(err)
	}
	return lib, site
}

// BenchmarkAblationDecisionCache compares the interposed malloc path
// with and without the decision cache of Algorithm 1 (lines 5/9): the
// cache removes the per-allocation translation.
func BenchmarkAblationDecisionCache(b *testing.B) {
	for _, cfg := range []struct {
		name string
		opts interpose.Options
	}{
		{"cached", interpose.Options{}},
		{"uncached", interpose.Options{DisableCache: true}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			lib, site := ablationFixture(b, cfg.opts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				addr, err := lib.Malloc(site, 4*units.KB)
				if err != nil {
					b.Fatal(err)
				}
				if err := lib.Free(addr); err != nil {
					b.Fatal(err)
				}
			}
			st := lib.Stats()
			b.ReportMetric(float64(st.Translates), "translations")
			b.ReportMetric(float64(lib.OverheadCycles())/float64(b.N), "modeled-cyc/op")
		})
	}
}

// BenchmarkAblationSizeFilter compares the malloc path for allocations
// outside the lb/ub range with and without the size pre-filter
// (Algorithm 1, line 3): the filter skips unwinding entirely.
func BenchmarkAblationSizeFilter(b *testing.B) {
	for _, cfg := range []struct {
		name string
		opts interpose.Options
	}{
		{"filtered", interpose.Options{}},
		{"unfiltered", interpose.Options{DisableSizeFilter: true}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			lib, site := ablationFixture(b, cfg.opts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// 64 KB is outside the [4 KB, 4 KB] selected range.
				addr, err := lib.Malloc(site, 64*units.KB)
				if err != nil {
					b.Fatal(err)
				}
				if err := lib.Free(addr); err != nil {
					b.Fatal(err)
				}
			}
			st := lib.Stats()
			b.ReportMetric(float64(st.Unwinds), "unwinds")
			b.ReportMetric(float64(lib.OverheadCycles())/float64(b.N), "modeled-cyc/op")
		})
	}
}
