// Package hybridmem is a reproduction of "Automating the Application
// Data Placement in Hybrid Memory Systems" (Servat et al., IEEE
// CLUSTER 2017) as a self-contained Go library.
//
// It implements the paper's four-stage profile-guided placement
// framework over a deterministic simulation of an Intel Xeon Phi-class
// hybrid memory node (DDR + MCDRAM):
//
//	Stage 1 — Profile:  run the application instrumented (Extrae):
//	                    malloc/free call stacks + PEBS-sampled LLC
//	                    misses -> trace.
//	Stage 2 — Analyze:  reduce the trace to per-object statistics
//	                    (Paramedir): sampled misses + max size.
//	Stage 3 — Advise:   pick the objects to promote for a given fast-
//	                    memory budget (hmem_advisor): Misses(θ) or
//	                    Density greedy knapsacks.
//	Stage 4 — Execute:  re-run the unmodified application with the
//	                    interposition library (auto-hbwmalloc) routing
//	                    the selected allocation sites to MCDRAM.
//
// The package also ships the paper's baselines (DDR, numactl -p 1,
// autohbw, MCDRAM cache mode), the eight Table I workload analogs plus
// STREAM, the Folding analysis of Figure 5, and the ΔFOM/MByte metric
// of Equation 1.
//
// Beyond the paper's offline pipeline, the library implements Section
// V's dynamic-placement future work as an online subsystem (RunOnline,
// BaselineOnline, internal/online): the run is sliced into epochs, an
// in-run PEBS monitor feeds an exponential-decay aggregator, the
// knapsack is re-solved against the live footprint at every boundary,
// and objects migrate between DDR and MCDRAM mid-run when a
// hysteresis gate finds the predicted gain worth the move traffic.
// The "phaseshift" workload is the scenario where this beats every
// one-shot placement. See DESIGN.md for the full system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package hybridmem

import (
	"context"
	"fmt"
	"io"

	"repro/internal/advisor"
	"repro/internal/apps"
	"repro/internal/baseline"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/folding"
	"repro/internal/interpose"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/paramedir"
	"repro/internal/predict"
	"repro/internal/trace"
	"repro/internal/units"
)

// Re-exported core types. The library's public surface is this root
// package; internal packages are implementation.
type (
	// Workload is a synthetic application: objects, phases, FOM.
	Workload = engine.Workload
	// ObjectSpec declares one data object of a workload.
	ObjectSpec = engine.ObjectSpec
	// Phase is one routine execution within an iteration.
	Phase = engine.Phase
	// Touch is one phase's access work on one object.
	Touch = engine.Touch
	// RunResult summarizes one simulated execution.
	RunResult = engine.Result
	// Machine is the simulated memory-system configuration.
	Machine = mem.Machine
	// Trace is an Extrae-style instrumented-run recording.
	Trace = trace.Trace
	// ObjectProfile is Paramedir's per-object reduction.
	ObjectProfile = paramedir.Profile
	// PlacementReport is hmem_advisor's object selection.
	PlacementReport = advisor.Report
	// Strategy selects objects for the fast-memory knapsack.
	Strategy = advisor.Strategy
	// MemoryConfig is the tier hierarchy the advisor packs against.
	MemoryConfig = advisor.MemoryConfig
	// TierConfig describes one tier of a MemoryConfig.
	TierConfig = advisor.TierConfig
	// TierID identifies a memory tier of a Machine.
	TierID = mem.TierID
	// TierSpec describes one memory tier of a Machine (capacity,
	// latency, bandwidth, NUMA domain, controller group).
	TierSpec = mem.TierSpec
	// InterposeOptions tunes the auto-hbwmalloc library.
	InterposeOptions = interpose.Options
	// InterposeStats are auto-hbwmalloc's execution statistics.
	InterposeStats = interpose.Stats
	// Folded is the Figure 5 folded-iteration profile.
	Folded = folding.Folded
	// FlightRecorder is the structured-trace recorder of internal/obs.
	// A nil *FlightRecorder is valid everywhere one is accepted and
	// records nothing at zero cost.
	FlightRecorder = obs.Recorder
	// RunManifest is the run-identification header event every traced
	// run begins with.
	RunManifest = obs.Manifest
	// TraceSummary is the aggregate digest of a JSONL trace.
	TraceSummary = obs.Summary
)

// NewFlightRecorder returns a recorder streaming deterministic JSONL
// events to w. Attach it via the Obs field of ProfileConfig,
// ExecuteConfig, OnlineConfig, PipelineConfig or SweepOptions.
func NewFlightRecorder(w io.Writer) *FlightRecorder { return obs.New(w) }

// SummarizeTrace aggregates a JSONL trace (as written by a
// FlightRecorder) into a TraceSummary digest.
func SummarizeTrace(r io.Reader) (*TraceSummary, error) { return obs.Summarize(r) }

// ConfigFingerprint is the stable short fingerprint the flight
// recorder stamps into manifests — exposed so CLIs can label external
// artifacts consistently with trace contents.
func ConfigFingerprint(v any) string { return obs.Fingerprint(v) }

// Storage classes and access patterns, re-exported for workload
// authors.
const (
	Dynamic = engine.Dynamic
	Static  = engine.Static
	Stack   = engine.Stack

	Sequential   = engine.Sequential
	Strided      = engine.Strided
	GatherRandom = engine.GatherRandom
	PointerChase = engine.PointerChase

	LifetimeProgram   = engine.LifetimeProgram
	LifetimeIteration = engine.LifetimeIteration
)

// Byte units re-exported for configuration convenience.
const (
	KB = units.KB
	MB = units.MB
	GB = units.GB
)

// Placement strategies of hmem_advisor.
var (
	// StrategyDensity promotes by misses/byte profit density.
	StrategyDensity Strategy = advisor.DensityStrategy{}
	// StrategyExactDP is the impractical exact 0/1 knapsack reference.
	StrategyExactDP Strategy = advisor.ExactDP{}
	// StrategyExactNTier is the exact N-tier placement solver: branch
	// and bound over object×tier assignments with per-tier capacity
	// constraints and the topology-aware effective-perf objective,
	// pruned by an LP-relaxation bound. On the two-tier degenerate
	// configuration it falls back to the ExactDP knapsack (reports are
	// bit-identical up to the strategy label). It is the optimality
	// oracle of the verification harness — pair it with
	// PlacementObjective to measure a greedy strategy's gap.
	StrategyExactNTier Strategy = advisor.ExactNTier{}
	// StrategyFCFS packs in input order regardless of cost — the
	// software analog of numactl -p 1, for baselines and tests.
	StrategyFCFS Strategy = advisor.FCFSStrategy{}
)

// StrategyByName resolves a command-line strategy name — the one
// grammar cmd/hmemadvisor and cmd/experiments share:
//
//	density | misses | misses:<pct> | exact | exact-strict | exact-dp | exactdp | fcfs
//
// "exact-strict" is the exact solver with graceful degradation
// disabled: a node-limit or deadline overrun is an error instead of a
// fallback to the density waterfall (see PlacementReport.Degraded).
// Unknown names and malformed misses thresholds are errors; in
// particular "misses5" is rejected rather than silently parsed as a
// 0% threshold.
func StrategyByName(name string) (Strategy, error) {
	// The grammar lives in internal/advisor so the advisory daemon's
	// wire protocol resolves names identically to the CLIs.
	return advisor.StrategyByName(name)
}

// PlacementObjective prices a report against a memory configuration:
// Σ misses × effective performance of the tier each profiled object
// landed on (no entry = the default tier). This is the quantity
// StrategyExactNTier maximizes, so greedy/exact objective ratios
// measure how much performance a heuristic leaves on the table.
func PlacementObjective(prof *ObjectProfile, rep *PlacementReport, mc MemoryConfig) float64 {
	return advisor.ReportObjective(advisor.FromProfile(prof), rep, mc)
}

// StrategyMisses promotes by descending LLC misses with a percentage
// threshold (the paper evaluates 0%, 1% and 5%).
func StrategyMisses(thresholdPct float64) Strategy {
	return advisor.MissesStrategy{Threshold: thresholdPct}
}

// Well-known tier IDs of the shipped machine configurations.
const (
	TierDDR    = mem.TierDDR
	TierMCDRAM = mem.TierMCDRAM
	TierNVM    = mem.TierNVM
	TierHBM    = mem.TierHBM
	TierCXL    = mem.TierCXL
)

// DefaultKNL returns the reference Xeon Phi 7250-like node.
func DefaultKNL() Machine { return mem.DefaultKNL() }

// KNLOptane returns the three-tier KNL node: DDR + MCDRAM plus an
// Optane-class NVM floor slower than DDR.
func KNLOptane() Machine { return mem.KNLOptane() }

// HBMCXL returns the HBM-first node with DDR as the default tier and a
// CXL memory expander below it.
func HBMCXL() Machine { return mem.HBMCXL() }

// DualSocketHBM returns the two-domain topology showcase: the rank is
// pinned to socket 0 with plain DDR and an NVM floor, while socket 1
// carries an HBM-class tier that is raw-faster than DDR but slower
// end-to-end once the cross-socket distance is priced in.
func DualSocketHBM() Machine { return mem.DualSocketHBM() }

// PinRank returns the machine with its cores pinned to the given NUMA
// domain; all tier pricing is taken from that domain's point of view.
func PinRank(m Machine, domain int) Machine { return mem.Pinned(m, domain) }

// WithSharedControllers declares that the named tiers drain through
// one shared memory-controller group, enabling the cross-tier
// contention model of mem.MigrationTimeUnder (e.g. DDR+NVM sharing a
// socket's iMC on Optane nodes, or HBM+DDR sharing the mesh).
func WithSharedControllers(m Machine, controller int, tiers ...TierID) Machine {
	return mem.WithSharedControllers(m, controller, tiers...)
}

// WithUniformTopology re-declares the machine as a multi-domain node
// with an all-ones distance matrix — the degenerate topology whose
// behavior must be byte-identical to the flat machine (see the
// uniform-topology invariance tests).
func WithUniformTopology(m Machine, domains int) Machine {
	return mem.WithUniformTopology(m, domains)
}

// PerRankMachine derives the machine one MPI rank sees on a node
// shared by ranks ranks of threads threads each.
func PerRankMachine(node Machine, ranks, threads int) Machine {
	return mem.PerRank(node, ranks, threads)
}

// CacheModeMachine reconfigures a machine with MCDRAM as a
// direct-mapped memory-side cache.
func CacheModeMachine(m Machine) Machine { return mem.WithCacheMode(m) }

// Workloads returns the eight Table I application analogs.
func Workloads() []*Workload { return apps.Catalog() }

// WorkloadByName builds one registered workload: a Table I analog
// ("hpcg", "lulesh", "bt", "minife", "cgpop", "snap", "maxw-dgtd",
// "gtc-p") or the phase-shifting online-placement adversary
// ("phaseshift").
func WorkloadByName(name string) (*Workload, error) { return apps.ByName(name) }

// WorkloadNames lists the registered workload names.
func WorkloadNames() []string { return apps.Names() }

// StreamWorkload returns the STREAM Triad kernel of Figure 1.
func StreamWorkload() *Workload { return apps.Stream() }

// NTierDemoWorkload returns the three-tier showcase: a rank whose
// footprint exceeds DDR+MCDRAM and whose hot set exceeds MCDRAM, run
// on PerRankMachine(KNLOptane(), 64, 4). See examples/ntier.
func NTierDemoWorkload() *Workload { return apps.NTierDemo() }

// StreamCoreCounts returns Figure 1's core-count sweep.
func StreamCoreCounts() []int { return apps.StreamCoreCounts() }

// MachineFor returns the per-rank machine a workload runs on.
func MachineFor(w *Workload) Machine { return apps.MachineFor(w) }

// BudgetsFor returns the Figure 4 MCDRAM budget sweep for a workload.
func BudgetsFor(w *Workload) []int64 { return apps.Budgets(w) }

// DeltaFOMPerMB is Equation 1: fast-memory efficiency of a result.
func DeltaFOMPerMB(fom, fomDDR float64, memBytes int64) float64 {
	return metrics.DeltaFOMPerMB(fom, fomDDR, memBytes)
}

// ImprovementPct is the percentage FOM improvement over a baseline.
func ImprovementPct(fom, base float64) float64 { return metrics.ImprovementPct(fom, base) }

// Fold runs the Folding analysis (Figure 5) over a monitored run's
// trace.
func Fold(tr *Trace, bins int, clockHz float64) (*Folded, error) {
	return folding.Fold(tr, bins, clockHz)
}

// ReadTrace decodes a trace written with Trace.Write — the file format
// the cmd/tracer and cmd/paramedir tools exchange.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// ReadReport decodes an advisor report written with
// PlacementReport.Write.
func ReadReport(r io.Reader) (*PlacementReport, error) { return advisor.ReadReport(r) }

// ReadProfileCSV decodes Paramedir CSV output.
func ReadProfileCSV(r io.Reader) (*ObjectProfile, error) { return paramedir.ReadCSV(r) }

// AccessPattern classifies an object's sampled access regularity.
type AccessPattern = paramedir.AccessPattern

// Pattern classes, re-exported from the analyzer.
const (
	PatternUnknown   = paramedir.PatternUnknown
	PatternRegular   = paramedir.PatternRegular
	PatternIrregular = paramedir.PatternIrregular
)

// ClassifyPatterns derives per-object access-pattern classes from a
// profiling trace (Section V: regular vs irregular regions feed
// latency-aware placement).
func ClassifyPatterns(prof *ObjectProfile, tr *Trace) map[string]AccessPattern {
	return paramedir.ClassifyPatterns(prof, tr)
}

// StrategyPatternAware weights profit density by access regularity:
// streams get MCDRAM's bandwidth; latency-bound irregular objects are
// discounted (MCDRAM's idle latency is worse than DDR's).
func StrategyPatternAware(patterns map[string]AccessPattern) Strategy {
	return advisor.PatternAwareStrategy{Patterns: patterns}
}

// HotRange is the critical portion of an object identified from its
// sampled misses.
type HotRange = paramedir.HotRange

// AnalyzeHotRanges finds, per profiled object, the smallest contiguous
// range covering most of its sampled misses — the input to partitioned
// placement (Section V).
func AnalyzeHotRanges(prof *ObjectProfile, tr *Trace) map[string]HotRange {
	return paramedir.AnalyzeHotRanges(prof, tr)
}

// AdvisePartitioned packs like Advise but, when an object does not fit
// the remaining budget whole, places only its hot range; auto-hbwmalloc
// then binds just those pages to fast memory (simulated mbind) — the
// paper's final future-work item.
func AdvisePartitioned(prof *ObjectProfile, tr *Trace, budget int64, strat Strategy) (*PlacementReport, error) {
	if prof == nil {
		return nil, fmt.Errorf("hybridmem: nil profile")
	}
	hot := paramedir.AnalyzeHotRanges(prof, tr)
	return advisor.AdvisePartitioned(prof.App, advisor.FromProfile(prof), hot, advisor.TwoTier(budget), strat)
}

// Prediction is the outcome of a trace-replay performance prediction.
type Prediction = predict.Prediction

// PredictPlacement replays a profiling trace against a placement
// report and predicts the speedup over the DDR run WITHOUT executing
// stage 4 — the trace-replay simulator the paper's Section V proposes
// for screening candidate placements.
func PredictPlacement(tr *Trace, rep *PlacementReport, m Machine) (*Prediction, error) {
	return predict.Replay(tr, rep, m)
}

// RankPlacements predicts several candidate reports at once and
// returns their indices ordered best-first plus each prediction.
func RankPlacements(tr *Trace, reports []*PlacementReport, m Machine) ([]int, []*Prediction, error) {
	return predict.RankPlacements(tr, reports, m)
}

// ProfileConfig parameterizes Stage 1.
type ProfileConfig struct {
	Machine Machine
	// Cores used by the run (0 = all machine cores).
	Cores int
	Seed  uint64
	// SamplePeriod is the PEBS decimation (0 = the paper's 37,589).
	SamplePeriod uint64
	// MinAllocSize skips instrumenting small allocations (0 = 4 KB).
	MinAllocSize int64
	// RefScale scales simulated access volume (0 = 1.0).
	RefScale float64
	// Obs, when non-nil, records the run's manifest and epoch events.
	Obs *FlightRecorder

	// ctx, when non-nil, cancels the run at iteration/phase boundaries
	// (set via ProfileCtx / PipelineCtx; not public so the context-free
	// entry points stay the canonical zero-value API).
	ctx context.Context
}

// DefaultScaledPeriod is the default PEBS period for the scaled
// simulation. The paper samples 1 out of every 37,589 L2 misses
// (pebs.DefaultPeriod) over runs issuing billions of references; this
// repository's runs are scaled to a few million references, so the
// period is scaled by the same factor to preserve the paper's
// samples-per-process range (thousands — Table I) and its statistical
// attribution quality. The online subsystem's in-run monitor uses the
// same period (it is an alias of online.DefaultSamplePeriod).
const DefaultScaledPeriod = online.DefaultSamplePeriod

func (c *ProfileConfig) fill() {
	if c.SamplePeriod == 0 {
		c.SamplePeriod = DefaultScaledPeriod
	}
	if c.MinAllocSize == 0 {
		c.MinAllocSize = 4 * units.KB
	}
}

// Profile is Stage 1: execute w on the DDR placement with Extrae-style
// instrumentation and PEBS sampling, returning the trace and the
// profiling run's result (whose overhead column feeds Table I).
func Profile(w *Workload, cfg ProfileConfig) (*Trace, *RunResult, error) {
	cfg.fill()
	res, err := engine.Run(w, engine.Config{
		Machine:    cfg.Machine,
		Cores:      cfg.Cores,
		Seed:       cfg.Seed,
		MakePolicy: baseline.DDR(),
		RefScale:   cfg.RefScale,
		Obs:        cfg.Obs,
		Ctx:        cfg.ctx,
		Tag:        "profile",
		Monitor: &engine.MonitorConfig{
			SamplePeriod: cfg.SamplePeriod,
			MinAllocSize: cfg.MinAllocSize,
		},
	})
	if err != nil {
		return nil, nil, err
	}
	return res.Trace, res, nil
}

// ProfileWithPolicy runs w monitored while honouring an advisor report
// through auto-hbwmalloc — the run the Figure 5 folding visualizes
// (instrumenting the production placement instead of the DDR one).
func ProfileWithPolicy(w *Workload, cfg ProfileConfig, rep *PlacementReport) (*Trace, *RunResult, error) {
	cfg.fill()
	tag := "profile"
	if rep != nil && rep.Strategy != "" {
		tag = "profile/" + rep.Strategy
	}
	res, err := engine.Run(w, engine.Config{
		Machine:    cfg.Machine,
		Cores:      cfg.Cores,
		Seed:       cfg.Seed,
		MakePolicy: interpose.Factory(rep, InterposeOptions{}),
		RefScale:   cfg.RefScale,
		Obs:        cfg.Obs,
		Ctx:        cfg.ctx,
		Tag:        tag,
		Monitor: &engine.MonitorConfig{
			SamplePeriod: cfg.SamplePeriod,
			MinAllocSize: cfg.MinAllocSize,
		},
	})
	if err != nil {
		return nil, nil, err
	}
	return res.Trace, res, nil
}

// Analyze is Stage 2: reduce a trace to per-object statistics.
func Analyze(tr *Trace) (*ObjectProfile, error) { return paramedir.Analyze(tr) }

// Advise is Stage 3: select the objects to promote into a fast-memory
// budget using the given strategy. It is the paper-reproduction
// two-tier wrapper around AdviseHierarchy: packing the classic
// MCDRAM+DDR configuration, it produces reports byte-identical to the
// original single-knapsack hmem_advisor.
func Advise(prof *ObjectProfile, budget int64, strat Strategy) (*PlacementReport, error) {
	if prof == nil {
		return nil, fmt.Errorf("hybridmem: nil profile")
	}
	return advisor.Advise(prof.App, advisor.FromProfile(prof), advisor.TwoTier(budget), strat)
}

// AdviseObserved is Advise with a flight recorder attached: the
// waterfall's per-tier packing steps and — under StrategyExactNTier —
// the branch-and-bound solver's node/prune counters are emitted as
// pack/solver events. A nil recorder makes it exactly Advise.
func AdviseObserved(prof *ObjectProfile, budget int64, strat Strategy, rec *FlightRecorder) (*PlacementReport, error) {
	if prof == nil {
		return nil, fmt.Errorf("hybridmem: nil profile")
	}
	return advisor.AdviseObserved(prof.App, advisor.FromProfile(prof), advisor.TwoTier(budget), strat, rec)
}

// AdviseHierarchyObserved is AdviseHierarchy with a flight recorder
// attached; see AdviseObserved.
func AdviseHierarchyObserved(prof *ObjectProfile, mc MemoryConfig, strat Strategy, rec *FlightRecorder) (*PlacementReport, error) {
	if prof == nil {
		return nil, fmt.Errorf("hybridmem: nil profile")
	}
	return advisor.AdviseObserved(prof.App, advisor.FromProfile(prof), mc, strat, rec)
}

// TwoTier returns the classic MCDRAM+DDR advisor configuration with
// the given fast-tier budget — the memory configuration file of the
// paper's hmem_advisor.
func TwoTier(fastBudget int64) MemoryConfig { return advisor.TwoTier(fastBudget) }

// NTier builds an advisor configuration from an arbitrary tier list.
// The tier named "DDR" (when present) becomes the default tier —
// untargeted allocations land there and tiers slower than it receive
// explicit placement entries; without a DDR tier the slowest tier is
// the implicit default, the paper's two-tier semantics. Set
// MemoryConfig.DefaultTier to override.
func NTier(tiers ...TierConfig) MemoryConfig {
	mc := MemoryConfig{Tiers: tiers}
	for _, t := range tiers {
		if t.Name == "DDR" {
			mc.DefaultTier = "DDR"
			break
		}
	}
	return mc
}

// MemoryConfigFor derives the advisor configuration from a simulated
// machine — every tier with its capacity and relative performance,
// the machine's default tier marked — replacing the fastest tier's
// capacity with fastBudget when positive (the paper's per-rank budget
// sweep).
func MemoryConfigFor(m Machine, fastBudget int64) MemoryConfig {
	return advisor.FromMachine(&m, fastBudget)
}

// AdviseHierarchy is the N-tier Stage 3: waterfall-pack the profiled
// objects over an arbitrary tier hierarchy — fill the fastest tier,
// cascade the overflow down — recording a target tier per object.
// Objects assigned to the default tier get no entry; on machines with
// tiers slower than the default the coldest objects receive explicit
// entries banishing them below it, which is what protects warm data
// from landing on the NVM/CXL floor by allocation-order accident.
func AdviseHierarchy(prof *ObjectProfile, mc MemoryConfig, strat Strategy) (*PlacementReport, error) {
	if prof == nil {
		return nil, fmt.Errorf("hybridmem: nil profile")
	}
	return advisor.Advise(prof.App, advisor.FromProfile(prof), mc, strat)
}

// AdviseHierarchyTimeAware is AdviseTimeAware over an arbitrary
// hierarchy: per-tier peak-concurrent-footprint packing.
func AdviseHierarchyTimeAware(prof *ObjectProfile, mc MemoryConfig, strat Strategy) (*PlacementReport, error) {
	if prof == nil {
		return nil, fmt.Errorf("hybridmem: nil profile")
	}
	return advisor.AdviseTimeAware(prof.App, advisor.FromProfileTimed(prof), mc, strat)
}

// AdviseHierarchyPartitioned is AdvisePartitioned over an arbitrary
// hierarchy: whole-or-hot-range packing on the fastest tier, plain
// waterfall below it.
func AdviseHierarchyPartitioned(prof *ObjectProfile, tr *Trace, mc MemoryConfig, strat Strategy) (*PlacementReport, error) {
	if prof == nil {
		return nil, fmt.Errorf("hybridmem: nil profile")
	}
	hot := paramedir.AnalyzeHotRanges(prof, tr)
	return advisor.AdvisePartitioned(prof.App, advisor.FromProfile(prof), hot, mc, strat)
}

// AdviseTimeAware is the liveness-aware variant of Advise suggested in
// Section III: instead of budgeting the sum of every selected site's
// maximum size (the static-address-space assumption that misleads the
// advisor on churny applications like Lulesh), it packs against the
// peak CONCURRENT footprint reconstructed from the trace's allocation
// timeline.
func AdviseTimeAware(prof *ObjectProfile, budget int64, strat Strategy) (*PlacementReport, error) {
	if prof == nil {
		return nil, fmt.Errorf("hybridmem: nil profile")
	}
	return advisor.AdviseTimeAware(prof.App, advisor.FromProfileTimed(prof), advisor.TwoTier(budget), strat)
}

// ExecuteConfig parameterizes Stage 4 and baseline runs.
type ExecuteConfig struct {
	Machine  Machine
	Cores    int
	Seed     uint64
	RefScale float64
	// Obs, when non-nil, records the run's manifest and epoch events.
	Obs *FlightRecorder

	// pool donates reusable simulator state across runs (sweep-only:
	// RunSweep keeps one pool per worker). Pooled runs are
	// bit-identical to unpooled ones, so the seam is not part of the
	// public configuration surface.
	pool *engine.Pool
	// ctx, when non-nil, cancels the run at iteration/phase boundaries
	// (set via ExecuteCtx / the sweep engine).
	ctx context.Context
	// fault, when non-nil, arms the seeded chaos hooks inside the run
	// (set by RunSweep from SweepOptions.Fault; nil costs nothing).
	fault *faultinject.Injector
}

// Execute is Stage 4: re-run w with auto-hbwmalloc honouring the
// advisor report.
func Execute(w *Workload, rep *PlacementReport, opts InterposeOptions, cfg ExecuteConfig) (*RunResult, error) {
	tag := ""
	if rep != nil {
		tag = rep.Strategy
	}
	return engine.Run(w, engine.Config{
		Machine:    cfg.Machine,
		Cores:      cfg.Cores,
		Seed:       cfg.Seed,
		RefScale:   cfg.RefScale,
		MakePolicy: interpose.Factory(rep, opts),
		Obs:        cfg.Obs,
		Ctx:        cfg.ctx,
		Fault:      cfg.fault,
		Tag:        tag,
		Pool:       cfg.pool,
	})
}

// Baseline identifies one of the paper's comparison placements.
type Baseline uint8

// The four Figure 4 reference placements plus the online placer.
const (
	// BaselineDDR places everything in regular memory.
	BaselineDDR Baseline = iota
	// BaselineNumactl is numactl -p 1: first-touch into MCDRAM with
	// DDR fallback, statics and stack included.
	BaselineNumactl
	// BaselineAutoHBW is the autohbw library with a 1 MB threshold.
	BaselineAutoHBW
	// BaselineCacheMode configures MCDRAM as a memory-side cache.
	BaselineCacheMode
	// BaselineOnline is the epoch-driven adaptive placer of
	// internal/online, given the machine's whole MCDRAM tier as its
	// budget (use RunOnline to sweep budgets and tuning knobs).
	BaselineOnline
)

// String implements fmt.Stringer.
func (b Baseline) String() string {
	switch b {
	case BaselineDDR:
		return "ddr"
	case BaselineNumactl:
		return "numactl"
	case BaselineAutoHBW:
		return "autohbw/1m"
	case BaselineCacheMode:
		return "cache"
	case BaselineOnline:
		return "online"
	default:
		return fmt.Sprintf("baseline(%d)", uint8(b))
	}
}

// RunBaseline executes w under one of the comparison placements.
func RunBaseline(w *Workload, b Baseline, cfg ExecuteConfig) (*RunResult, error) {
	ec := engine.Config{
		Machine:  cfg.Machine,
		Cores:    cfg.Cores,
		Seed:     cfg.Seed,
		RefScale: cfg.RefScale,
		Obs:      cfg.Obs,
		Ctx:      cfg.ctx,
		Fault:    cfg.fault,
		Tag:      b.String(),
		Pool:     cfg.pool,
	}
	switch b {
	case BaselineDDR:
		ec.MakePolicy = baseline.DDR()
	case BaselineNumactl:
		ec.MakePolicy = baseline.Numactl()
		ec.StaticsInFast = true
	case BaselineAutoHBW:
		ec.MakePolicy = baseline.AutoHBW(1 * units.MB)
	case BaselineCacheMode:
		ec.Machine = mem.WithCacheMode(cfg.Machine)
		ec.MakePolicy = baseline.DDR()
	case BaselineOnline:
		return RunOnline(w, OnlineConfig{
			Machine: cfg.Machine, Cores: cfg.Cores, Seed: cfg.Seed,
			RefScale: cfg.RefScale, Obs: cfg.Obs, pool: cfg.pool,
			ctx: cfg.ctx, fault: cfg.fault,
		})
	default:
		return nil, fmt.Errorf("hybridmem: unknown baseline %v", b)
	}
	return engine.Run(w, ec)
}

// OnlineConfig parameterizes a run under the online adaptive placer —
// the dynamic data placement of Section V's future work: no profiling
// stage, no advisor report; the run monitors itself, re-solves the
// knapsack at epoch boundaries, and migrates objects between tiers
// when the predicted gain beats the move cost.
type OnlineConfig struct {
	Machine  Machine
	Cores    int
	Seed     uint64
	RefScale float64
	// Budget is the fast-memory budget the placer may bind (0 = the
	// machine's whole fastest tier).
	Budget int64
	// Budgets optionally caps the bytes bound per additional
	// non-default tier (e.g. an NVM floor); missing tiers default to
	// their capacity.
	Budgets map[TierID]int64
	// EveryIterations / EveryRefs set the epoch length (all epoch
	// bounds 0 = every iteration).
	EveryIterations int
	EveryRefs       int64
	// EveryFloorBytes additionally closes an epoch once tiers slower
	// than the default served that many bytes — rescue migrations
	// fire exactly when the NVM/CXL floor starts to hurt.
	EveryFloorBytes int64
	// SamplePeriod is the in-run monitor's PEBS decimation
	// (0 = DefaultScaledPeriod).
	SamplePeriod uint64
	// Decay, Hysteresis, HorizonEpochs and MinSamples tune the
	// re-advisor; zero values take internal/online's defaults.
	Decay         float64
	Hysteresis    float64
	HorizonEpochs float64
	MinSamples    int
	// Strategy packs the per-epoch knapsack (nil = StrategyDensity).
	Strategy Strategy
	// Obs, when non-nil, records the run's manifest and epoch events
	// plus the placer's per-epoch tier-usage snapshots and
	// migration-gate ACCEPT/REJECT decisions.
	Obs *FlightRecorder

	// pool donates reusable simulator state across runs (sweep-only;
	// see ExecuteConfig.pool).
	pool *engine.Pool
	// ctx / fault: cancellation and chaos seams; see ExecuteConfig.
	ctx   context.Context
	fault *faultinject.Injector
}

// RunOnline executes w under the online adaptive placer. The result's
// Epochs/Migrations/MigratedBytes/MigrationCycles fields report the
// re-placement activity.
func RunOnline(w *Workload, cfg OnlineConfig) (*RunResult, error) {
	budget := cfg.Budget
	if budget <= 0 {
		if len(cfg.Machine.Tiers) == 0 {
			return nil, fmt.Errorf("hybridmem: machine has no memory tiers")
		}
		// The placer promotes into the EFFECTIVELY-fastest tier (the
		// near hierarchy's head), so that is the capacity the default
		// budget must match — on a multi-domain machine the raw-fastest
		// tier can be a remote one the placer never binds.
		budget = cfg.Machine.NearFastestTier().Capacity
	}
	// The horizon cap is only knowable for purely iteration-counted
	// epochs; a refs or floor-volume trigger can close epochs at phase
	// granularity, so its total is workload-dependent and stays
	// unbounded.
	totalEpochs := 0
	if cfg.EveryRefs <= 0 && cfg.EveryFloorBytes <= 0 {
		if cfg.EveryIterations > 0 {
			totalEpochs = w.Iterations / cfg.EveryIterations
		} else {
			totalEpochs = w.Iterations
		}
	}
	tag := "online/density"
	if cfg.Strategy != nil {
		tag = "online/" + cfg.Strategy.Name()
	}
	return engine.Run(w, engine.Config{
		Machine: cfg.Machine, Cores: cfg.Cores, Seed: cfg.Seed,
		RefScale: cfg.RefScale,
		Obs:      cfg.Obs,
		Ctx:      cfg.ctx,
		Fault:    cfg.fault,
		Tag:      tag,
		Pool:     cfg.pool,
		MakePolicy: online.Factory(online.Options{
			Machine: cfg.Machine, Cores: cfg.Cores, Budget: budget,
			Budgets:         cfg.Budgets,
			EveryIterations: cfg.EveryIterations, EveryRefs: cfg.EveryRefs,
			EveryFloorBytes: cfg.EveryFloorBytes,
			SamplePeriod:    cfg.SamplePeriod, Decay: cfg.Decay,
			Hysteresis: cfg.Hysteresis, HorizonEpochs: cfg.HorizonEpochs,
			MinSamples:  cfg.MinSamples,
			TotalEpochs: totalEpochs, Strategy: cfg.Strategy,
			Obs: cfg.Obs,
		}),
	})
}

// PipelineConfig drives all four stages end to end.
type PipelineConfig struct {
	Machine      Machine
	Cores        int
	Seed         uint64
	SamplePeriod uint64
	MinAllocSize int64
	RefScale     float64
	// Budget is the fast-memory budget per rank.
	Budget int64
	// Memory, when non-nil, makes the advise stage waterfall-pack this
	// hierarchy (AdviseHierarchy) instead of the two-tier
	// TwoTier(Budget) configuration — the N-tier pipeline. Budget is
	// ignored when Memory is set.
	Memory *MemoryConfig
	// Strategy is the hmem_advisor packing strategy.
	Strategy Strategy
	// TimeAware selects with AdviseTimeAware (peak-concurrent budget)
	// instead of the stock whole-run-liveness packing.
	TimeAware bool
	// Interpose tunes the run-time library.
	Interpose InterposeOptions
	// Obs, when non-nil, records every stage: the profiling and
	// production runs' manifests and epoch events plus the advisor's
	// pack/solver events. RunSweep replaces it per cell with a buffered
	// recorder (and skips the shared profiling run's events) so parallel
	// sweep traces stay deterministic.
	Obs *FlightRecorder

	// pool donates reusable simulator state to the execute stage
	// (sweep-only; see ExecuteConfig.pool). The profiling stage never
	// pools: its artifact is shared across cells and its owner is
	// scheduling-dependent.
	pool *engine.Pool
	// ctx, when non-nil, cancels every stage: the profiling and
	// production runs poll it at iteration/phase boundaries and the
	// exact solver every ~64k branch-and-bound nodes (set via
	// PipelineCtx / RunSweepCtx).
	ctx context.Context
	// fault arms the chaos hooks of the execute stage only — the
	// profiling artifact is shared across sweep cells, so injecting
	// there is SweepSetup's job, not the engine hooks'.
	fault *faultinject.Injector
}

// PipelineResult carries every stage's artifact.
type PipelineResult struct {
	Trace        *Trace
	ProfilingRun *RunResult
	Profile      *ObjectProfile
	Report       *PlacementReport
	Run          *RunResult
}

// Pipeline executes the complete framework: profile on DDR, analyze,
// advise for the budget, and re-run under auto-hbwmalloc.
//
// When several pipeline runs share a workload and machine and differ
// only in budget or strategy — the shape of every sweep in the
// evaluation — use RunSweep instead: it computes the Profile/Analyze
// prefix once per distinct profiling configuration and fans the
// advise+execute cells across a worker pool, with results identical to
// calling Pipeline in a loop.
func Pipeline(w *Workload, cfg PipelineConfig) (*PipelineResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	tr, profRun, err := Profile(w, cfg.profileConfig())
	if err != nil {
		return nil, fmt.Errorf("hybridmem: profile stage: %w", err)
	}
	prof, err := Analyze(tr)
	if err != nil {
		return nil, fmt.Errorf("hybridmem: analyze stage: %w", err)
	}
	return adviseAndExecute(w, cfg, tr, profRun, prof)
}

func (cfg PipelineConfig) withDefaults() PipelineConfig {
	if cfg.Strategy == nil {
		cfg.Strategy = StrategyMisses(0)
	}
	return cfg
}

func (cfg *PipelineConfig) validate() error {
	if cfg.Budget <= 0 && cfg.Memory == nil {
		return fmt.Errorf("hybridmem: Pipeline needs a positive Budget or a Memory hierarchy")
	}
	return nil
}

// profileConfig is the Stage 1+2 slice of the pipeline configuration —
// exactly the fields the sweep engine memoizes profiling artifacts by.
func (cfg *PipelineConfig) profileConfig() ProfileConfig {
	return ProfileConfig{
		Machine: cfg.Machine, Cores: cfg.Cores, Seed: cfg.Seed,
		SamplePeriod: cfg.SamplePeriod, MinAllocSize: cfg.MinAllocSize,
		RefScale: cfg.RefScale, Obs: cfg.Obs, ctx: cfg.ctx,
	}
}

// adviseAndExecute is the Stage 3+4 tail of a pipeline run, shared by
// Pipeline and the sweep engine so a memoized-profile sweep cannot
// drift from the serial path.
func adviseAndExecute(w *Workload, cfg PipelineConfig, tr *Trace, profRun *RunResult, prof *ObjectProfile) (*PipelineResult, error) {
	return adviseAndExecuteWarm(w, cfg, tr, profRun, prof, nil)
}

// adviseAndExecuteWarm is adviseAndExecute with the advisor's
// incremental re-solve seam: the sweep engine passes the WarmState it
// keeps per memoized profile, so adjacent budget/strategy cells reuse
// each other's sorted orders and exact-solver floors. Warm-starting
// only prunes — reports stay byte-identical to the cold path — so the
// sweep's bit-identical-to-serial contract is untouched. The
// time-aware advisors have no warm seam and always run cold.
func adviseAndExecuteWarm(w *Workload, cfg PipelineConfig, tr *Trace, profRun *RunResult, prof *ObjectProfile, ws *advisor.WarmState) (*PipelineResult, error) {
	ctx := cfg.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	strat := cfg.Strategy
	// Chaos seam: solver starvation clamps the exact solver's node
	// budget so it hits its limit and exercises the degradation ladder.
	// Consulted only for exact cells — the budget is meaningless to the
	// greedy strategies and the consult itself is tallied.
	if e, ok := strat.(advisor.ExactNTier); ok {
		if b := cfg.fault.SolverNodeBudget(); b > 0 && (e.MaxNodes == 0 || b < e.MaxNodes) {
			e.MaxNodes = b
			strat = e
		}
	}
	var rep *PlacementReport
	var err error
	switch {
	case cfg.Memory != nil && cfg.TimeAware:
		rep, err = AdviseHierarchyTimeAware(prof, *cfg.Memory, strat)
	case cfg.Memory != nil:
		rep, err = advisor.AdviseWarmCtx(ctx, prof.App, advisor.FromProfile(prof), *cfg.Memory, strat, ws, cfg.Obs)
	case cfg.TimeAware:
		rep, err = AdviseTimeAware(prof, cfg.Budget, strat)
	default:
		rep, err = advisor.AdviseWarmCtx(ctx, prof.App, advisor.FromProfile(prof), advisor.TwoTier(cfg.Budget), strat, ws, cfg.Obs)
	}
	if err != nil {
		return nil, fmt.Errorf("hybridmem: advise stage: %w", err)
	}
	// The production run uses a different seed half: same program,
	// different ASLR layout — translation must bridge it.
	res, err := Execute(w, rep, cfg.Interpose, ExecuteConfig{
		Machine: cfg.Machine, Cores: cfg.Cores, Seed: cfg.Seed + 0x9e37,
		RefScale: cfg.RefScale, Obs: cfg.Obs, pool: cfg.pool,
		ctx: cfg.ctx, fault: cfg.fault,
	})
	if err != nil {
		return nil, fmt.Errorf("hybridmem: execute stage: %w", err)
	}
	return &PipelineResult{
		Trace: tr, ProfilingRun: profRun, Profile: prof, Report: rep, Run: res,
	}, nil
}
