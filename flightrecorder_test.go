package hybridmem_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	hm "repro"
	"repro/internal/units"
)

// parseTrace decodes a flight-recorder JSONL stream into one generic
// map per line, failing the test on anything that is not valid JSON.
func parseTrace(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var lines []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("trace line %d is not valid JSON: %v\n%s", len(lines)+1, err, sc.Text())
		}
		lines = append(lines, m)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// traceGrid is the small mixed grid the trace determinism test sweeps:
// two pipeline cells sharing one memoized profile, one cell with a
// private profile, a baseline and an online cell — every cell kind and
// both memo dispositions.
func traceGrid(t *testing.T) []hm.SweepPoint {
	t.Helper()
	w, err := hm.WorkloadByName("minife")
	if err != nil {
		t.Fatal(err)
	}
	m := hm.MachineFor(w)
	const scale = 0.1
	return []hm.SweepPoint{
		hm.BaselinePoint("ddr", w, hm.BaselineDDR, hm.ExecuteConfig{Machine: m, Seed: 21, RefScale: scale}),
		hm.PipelinePoint("m0@32M", w, hm.PipelineConfig{
			Machine: m, Seed: 21, Budget: 32 * units.MB, Strategy: hm.StrategyMisses(0), RefScale: scale,
		}),
		hm.PipelinePoint("density@128M", w, hm.PipelineConfig{
			Machine: m, Seed: 21, Budget: 128 * units.MB, Strategy: hm.StrategyDensity, RefScale: scale,
		}),
		hm.PipelinePoint("otherseed", w, hm.PipelineConfig{
			Machine: m, Seed: 77, Budget: 128 * units.MB, RefScale: scale,
		}),
		hm.OnlinePoint("online", w, hm.OnlineConfig{
			Machine: m, Seed: 21, RefScale: scale, Budget: 128 * units.MB,
		}),
	}
}

// TestSweepTraceDeterministic pins the flight recorder's parallel-sweep
// contract: the JSONL stream of a 4-worker sweep is identical to the
// serial sweep's, except for the cell events' "worker" and "wall_ns"
// fields — the only scheduling-dependent data in a trace.
func TestSweepTraceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("a traced sweep grid is not -short")
	}
	record := func(workers int) []map[string]any {
		var buf bytes.Buffer
		rec := hm.NewFlightRecorder(&buf)
		if _, err := hm.RunSweep(traceGrid(t), hm.SweepOptions{Workers: workers, Obs: rec}); err != nil {
			t.Fatal(err)
		}
		if err := rec.Err(); err != nil {
			t.Fatal(err)
		}
		lines := parseTrace(t, &buf)
		for _, m := range lines {
			delete(m, "worker")
			delete(m, "wall_ns")
		}
		return lines
	}
	serial := record(1)
	parallel := record(4)
	if len(serial) == 0 {
		t.Fatal("traced sweep produced no events")
	}
	if !reflect.DeepEqual(serial, parallel) {
		for i := range serial {
			if i >= len(parallel) || !reflect.DeepEqual(serial[i], parallel[i]) {
				t.Fatalf("trace diverges at line %d:\nserial:   %v\nparallel: %v",
					i+1, serial[i], parallel[min(i, len(parallel)-1)])
			}
		}
		t.Fatalf("parallel trace has %d extra lines", len(parallel)-len(serial))
	}

	// The memo dispositions must reflect the canonical profile-sharing
	// structure: cells 1 and 2 share one profile (miss then hit), cell 3
	// has its own (miss), cells 0 and 4 have none.
	want := map[float64]string{0: "none", 1: "miss", 2: "hit", 3: "miss", 4: "none"}
	seen := 0
	for _, m := range serial {
		if m["ev"] != "cell" {
			continue
		}
		seen++
		cell, memo := m["cell"].(float64), m["memo"].(string)
		if memo != want[cell] {
			t.Errorf("cell %.0f: memo = %q, want %q", cell, memo, want[cell])
		}
	}
	if seen != 5 {
		t.Errorf("trace has %d cell events, want 5", seen)
	}
}

// TestOnlineGateTraceMatchesAccounting cross-checks the migration-gate
// events against the engine's own migration accounting: the sum of the
// ACCEPT events' moves and bytes must equal exactly what the run
// reports as migrated, on both the idle-priced and the
// contention-priced (shared-controller) machine — and the shared
// machine must show the gate actually refusing moves.
func TestOnlineGateTraceMatchesAccounting(t *testing.T) {
	w, err := hm.WorkloadByName("phaseshift")
	if err != nil {
		t.Fatal(err)
	}
	plain := hm.MachineFor(w)
	shared := hm.WithSharedControllers(plain, 1, hm.TierDDR, hm.TierMCDRAM)

	type gateTally struct {
		accepts, rejects int
		moves, moveBytes int64
	}
	run := func(m hm.Machine) (*hm.RunResult, gateTally) {
		var buf bytes.Buffer
		rec := hm.NewFlightRecorder(&buf)
		res, err := hm.RunOnline(w, hm.OnlineConfig{
			Machine: m, Seed: 21, Budget: 16 * units.MB, Obs: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		var tal gateTally
		for _, ev := range parseTrace(t, &buf) {
			if ev["ev"] != "gate" {
				continue
			}
			switch ev["decision"] {
			case "ACCEPT":
				tal.accepts++
				tal.moves += int64(ev["moves"].(float64))
				tal.moveBytes += int64(ev["move_bytes"].(float64))
			case "REJECT":
				tal.rejects++
			default:
				t.Fatalf("gate event with unknown decision %v", ev["decision"])
			}
		}
		return res, tal
	}

	plainRes, plainTal := run(plain)
	if plainTal.accepts == 0 {
		t.Fatal("idle-priced phaseshift run accepted no migrations — the gate trace has nothing to cross-check")
	}
	if plainTal.moves != plainRes.Migrations || plainTal.moveBytes != plainRes.MigratedBytes {
		t.Errorf("plain machine: ACCEPT events total %d moves / %d bytes, engine accounted %d moves / %d bytes",
			plainTal.moves, plainTal.moveBytes, plainRes.Migrations, plainRes.MigratedBytes)
	}

	sharedRes, sharedTal := run(shared)
	if sharedTal.moves != sharedRes.Migrations || sharedTal.moveBytes != sharedRes.MigratedBytes {
		t.Errorf("shared controllers: ACCEPT events total %d moves / %d bytes, engine accounted %d moves / %d bytes",
			sharedTal.moves, sharedTal.moveBytes, sharedRes.Migrations, sharedRes.MigratedBytes)
	}
	if sharedTal.rejects == 0 {
		t.Error("shared-controller run has no REJECT events — contention pricing never refused a move")
	}
	if sharedRes.MigratedBytes >= plainRes.MigratedBytes {
		t.Errorf("contended pricing should migrate less: shared %d bytes vs plain %d",
			sharedRes.MigratedBytes, plainRes.MigratedBytes)
	}
}

// TestTraceManifestRoundTrip checks the manifest contract at the facade
// level: a traced run's first event is a manifest that identifies the
// run and survives a decode/re-encode round trip byte-identically.
func TestTraceManifestRoundTrip(t *testing.T) {
	w, err := hm.WorkloadByName("phaseshift")
	if err != nil {
		t.Fatal(err)
	}
	m := hm.MachineFor(w)
	var buf bytes.Buffer
	rec := hm.NewFlightRecorder(&buf)
	if _, err := hm.RunBaseline(w, hm.BaselineDDR, hm.ExecuteConfig{
		Machine: m, Seed: 7, RefScale: 0.1, Obs: rec,
	}); err != nil {
		t.Fatal(err)
	}
	line, _, found := bytes.Cut(buf.Bytes(), []byte("\n"))
	if !found {
		t.Fatal("traced run wrote no events")
	}
	var man hm.RunManifest
	if err := json.Unmarshal(line, &man); err != nil {
		t.Fatal(err)
	}
	if man.Ev != "manifest" || man.Seq != 1 {
		t.Fatalf("first event is %q seq %d, want manifest seq 1", man.Ev, man.Seq)
	}
	if man.Workload != w.Name || man.Policy == "" || man.Strategy != "ddr" {
		t.Errorf("manifest identity = workload %q policy %q strategy %q", man.Workload, man.Policy, man.Strategy)
	}
	if len(man.Tiers) != len(m.Tiers) || man.Machine == "" || man.ConfigFP == "" {
		t.Errorf("manifest fingerprints incomplete: %+v", man)
	}
	again, err := json.Marshal(&man)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(line, again) {
		t.Errorf("manifest does not round-trip:\nfile:    %s\nre-done: %s", line, again)
	}
}
