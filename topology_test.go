package hybridmem_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	hm "repro"
	"repro/internal/units"
)

// ntierGoldenMachines are the N-tier machines whose advisor reports
// are pinned under testdata/ntier_reports (the per-rank views the
// ntierdemo workload targets).
func ntierGoldenMachines(w *hm.Workload) map[string]hm.Machine {
	return map[string]hm.Machine{
		"knloptane": hm.PerRankMachine(hm.KNLOptane(), w.Ranks, w.Threads),
		"hbmcxl":    hm.PerRankMachine(hm.HBMCXL(), w.Ranks, w.Threads),
	}
}

// ntierGoldenReport runs profile+analyze+waterfall-advise for the
// ntierdemo workload on machine m and returns the serialized report.
func ntierGoldenReport(t *testing.T, w *hm.Workload, m hm.Machine) []byte {
	t.Helper()
	tr, _, err := hm.Profile(w, hm.ProfileConfig{
		Machine: m, Seed: 42, RefScale: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := hm.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	mc := hm.MemoryConfigFor(m, 256*units.MB)
	rep, err := hm.AdviseHierarchy(prof, mc, hm.StrategyMisses(0))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAdviseNTierGolden pins the waterfall advisor's output on the
// KNLOptane and HBMCXL machine shapes, the N-tier counterpart of
// TestAdviseTwoTierSeedInvariance. Regenerate with -update.
func TestAdviseNTierGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("N-tier profiling runs are not -short")
	}
	w := hm.NTierDemoWorkload()
	for name, m := range ntierGoldenMachines(w) {
		t.Run(name, func(t *testing.T) {
			got := ntierGoldenReport(t, w, m)
			path := filepath.Join("testdata", "ntier_reports", name+".report")
			if *updateGoldens {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run go test -run NTierGolden -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s report diverged:\n--- golden ---\n%s\n--- got ---\n%s", name, want, got)
			}
		})
	}
}

// TestUniformTopologyAdviceInvariance is the degeneracy proof of the
// topology refactor's advisor half: machines re-declared as
// multi-domain with an all-ones distance matrix must reproduce every
// pinned advisor report byte-for-byte — the two-tier seed goldens AND
// the N-tier goldens.
func TestUniformTopologyAdviceInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling the golden workloads is not -short")
	}
	// Two-tier seed goldens under a uniform 2-domain re-declaration.
	for _, w := range hm.Workloads() {
		for _, st := range goldenStrategies() {
			name := fmt.Sprintf("%s_%s", w.Name, st.label)
			t.Run("seed/"+name, func(t *testing.T) {
				m := hm.WithUniformTopology(hm.MachineFor(w), 2)
				got := goldenReportOn(t, w, m, st.s)
				want, err := os.ReadFile(filepath.Join("testdata", "seed_reports", name+".report"))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("uniform topology changed the %s report:\n--- flat ---\n%s\n--- uniform ---\n%s",
						name, want, got)
				}
			})
		}
	}
	// N-tier goldens under a uniform 3-domain re-declaration.
	w := hm.NTierDemoWorkload()
	for name, m := range ntierGoldenMachines(w) {
		t.Run("ntier/"+name, func(t *testing.T) {
			got := ntierGoldenReport(t, w, hm.WithUniformTopology(m, 3))
			want, err := os.ReadFile(filepath.Join("testdata", "ntier_reports", name+".report"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("uniform topology changed the %s report:\n--- flat ---\n%s\n--- uniform ---\n%s",
					name, want, got)
			}
		})
	}
}

// TestUniformTopologyRunInvariance is the run-result half of the
// degeneracy proof: a uniform-topology re-declaration must leave every
// simulated result — baseline, pipeline and online — byte-identical,
// down to cycle counts and tier high-water marks.
func TestUniformTopologyRunInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("three run pairs are not -short")
	}
	w := hm.NTierDemoWorkload()
	flat := hm.PerRankMachine(hm.KNLOptane(), w.Ranks, w.Threads)
	uni := hm.WithUniformTopology(flat, 2)

	sameResult := func(label string, a, b *hm.RunResult) {
		t.Helper()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: uniform topology changed the run result:\nflat:    %+v\nuniform: %+v", label, a, b)
		}
	}

	for _, b := range []hm.Baseline{hm.BaselineDDR, hm.BaselineNumactl} {
		fr, err := hm.RunBaseline(w, b, hm.ExecuteConfig{Machine: flat, Seed: 42, RefScale: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		ur, err := hm.RunBaseline(w, b, hm.ExecuteConfig{Machine: uni, Seed: 42, RefScale: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(b.String(), fr, ur)
	}

	fmc := hm.MemoryConfigFor(flat, 256*units.MB)
	fp, err := hm.Pipeline(w, hm.PipelineConfig{Machine: flat, Seed: 42, Memory: &fmc, RefScale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	umc := hm.MemoryConfigFor(uni, 256*units.MB)
	up, err := hm.Pipeline(w, hm.PipelineConfig{Machine: uni, Seed: 42, Memory: &umc, RefScale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	sameResult("pipeline", fp.Run, up.Run)

	fo, err := hm.RunOnline(w, hm.OnlineConfig{Machine: flat, Seed: 42, RefScale: 0.25, Budget: 128 * units.MB})
	if err != nil {
		t.Fatal(err)
	}
	uo, err := hm.RunOnline(w, hm.OnlineConfig{Machine: uni, Seed: 42, RefScale: 0.25, Budget: 128 * units.MB})
	if err != nil {
		t.Fatal(err)
	}
	sameResult("online", fo, uo)
}
