package hybridmem

// The hardened execution surface: cancellation-aware entry points,
// the typed failure vocabulary of the sweep engine and the exact
// solver, and the seeded fault-injection harness for chaos testing.
//
// Design rules, in force everywhere below:
//
//   - The context-free entry points (Pipeline, RunSweep, RunOnline,
//     Advise…) remain the canonical API and are byte-identical to
//     their pre-hardening behavior; every …Ctx variant with a
//     context.Background() is exactly its context-free twin.
//   - Cancellation is polled at simulation boundaries only —
//     iteration/phase boundaries in the engine, every ~64k nodes in
//     the exact solver — never inside the memory-access hot loop, so
//     arming a context costs nothing measurable.
//   - All injected faults are planned from a seed, not rolled per
//     call: the same seed hurts the same cells with the same faults
//     regardless of worker count or scheduling.

import (
	"context"
	"fmt"

	"repro/internal/advisor"
	"repro/internal/faultinject"
	"repro/internal/runerr"
	"repro/internal/sweep"
)

// Typed failure sentinels of the hardened execution layer, matched
// with errors.Is.
var (
	// ErrCanceled wraps every error caused by context cancellation or
	// deadline expiry; the context's own cause (context.Canceled or
	// context.DeadlineExceeded) stays reachable through the chain.
	ErrCanceled = runerr.ErrCanceled
	// ErrCellPanic wraps every recovered sweep-cell (or shared-setup)
	// panic; errors.As against *CellPanicError recovers the panic
	// value and stack.
	ErrCellPanic = sweep.ErrCellPanic
	// ErrNodeLimit is the exact solver's node-budget overrun. Callers
	// only see it under StrategyExactStrict — the non-strict solver
	// degrades to the density waterfall instead (see
	// PlacementReport.Degraded).
	ErrNodeLimit = advisor.ErrNodeLimit
	// ErrFaultInjected wraps every error the chaos harness fabricates,
	// so injected failures are distinguishable from organic ones.
	ErrFaultInjected = faultinject.ErrInjected
)

// CellPanicError captures one recovered sweep panic: the cell index
// (-1 for a shared-setup panic), the panic value and the stack at the
// recovery point. It wraps ErrCellPanic.
type CellPanicError = sweep.CellPanic

// Degradation is the machine-readable marker a gracefully degraded
// placement report carries (PlacementReport.Degraded): why the exact
// solve stopped, which strategy answered instead, how many nodes were
// explored, and a lower bound on the fallback's optimality ratio.
type Degradation = advisor.Degradation

// StrategyExactStrict is StrategyExactNTier with graceful degradation
// disabled: a node-limit or deadline overrun fails the advise stage
// (ErrNodeLimit / ErrCanceled) instead of falling back to the density
// waterfall. Use it where an exact answer must be exact or absent —
// optimality-gap measurement, oracle tests.
var StrategyExactStrict Strategy = advisor.ExactNTier{Strict: true}

// FaultInjector is the seeded chaos plan of internal/faultinject. A
// nil *FaultInjector is valid everywhere one is accepted and injects
// nothing at zero cost — the production idiom is to leave it nil.
type FaultInjector = faultinject.Injector

// FaultSpec declares how much of each fault a FaultInjector plans;
// see NewFaultInjector.
type FaultSpec = faultinject.Spec

// FaultPoint names one injection point of the chaos harness — the
// keys of FaultInjector.Counts.
type FaultPoint = faultinject.Point

// The injection points of the execution layer.
const (
	// FaultSweepSetup fails the shared Profile+Analyze setup of victim
	// profiling keys, taking down every cell that shares them.
	FaultSweepSetup = faultinject.SweepSetup
	// FaultSweepCellError makes victim sweep cells return an injected
	// error.
	FaultSweepCellError = faultinject.SweepCellError
	// FaultSweepCellPanic makes victim sweep cells panic (recovered
	// and isolated by the sweep engine).
	FaultSweepCellPanic = faultinject.SweepCellPanic
	// FaultAllocFail fails every Nth allocation inside victim cells'
	// engine runs.
	FaultAllocFail = faultinject.AllocFail
	// FaultEpochDelay stalls victim cells' simulated clock at epoch
	// boundaries.
	FaultEpochDelay = faultinject.EpochDelay
	// FaultSolverStarve clamps the exact solver's node budget so it
	// exercises the degradation ladder.
	FaultSolverStarve = faultinject.SolverStarve
	// FaultCacheCorrupt garbles every Nth artifact-cache write, modeling
	// torn writes and bit rot the cache's checksums must catch.
	FaultCacheCorrupt = faultinject.CacheCorrupt
	// FaultClientDisconnect severs victim advisory clients' connections
	// mid-conversation; the daemon must shrug and other clients must be
	// unaffected.
	FaultClientDisconnect = faultinject.ClientDisconnect
)

// NewFaultInjector builds the deterministic chaos plan for a seed:
// victim cells are picked by seeded hash rank over the sweep's cell
// and profiling-key domains, so two sweeps with the same seed, spec
// and shape suffer identical faults regardless of worker count. Hand
// it to SweepOptions.Fault.
func NewFaultInjector(seed uint64, spec FaultSpec) *FaultInjector {
	return faultinject.New(seed, spec)
}

// ProfileCtx is Profile under a context: the run polls ctx at
// iteration/phase boundaries and returns an ErrCanceled-wrapped error
// promptly once it is done.
func ProfileCtx(ctx context.Context, w *Workload, cfg ProfileConfig) (*Trace, *RunResult, error) {
	cfg.ctx = ctx
	return Profile(w, cfg)
}

// ExecuteCtx is Execute under a context; see ProfileCtx.
func ExecuteCtx(ctx context.Context, w *Workload, rep *PlacementReport, opts InterposeOptions, cfg ExecuteConfig) (*RunResult, error) {
	cfg.ctx = ctx
	return Execute(w, rep, opts, cfg)
}

// RunBaselineCtx is RunBaseline under a context; see ProfileCtx.
func RunBaselineCtx(ctx context.Context, w *Workload, b Baseline, cfg ExecuteConfig) (*RunResult, error) {
	cfg.ctx = ctx
	return RunBaseline(w, b, cfg)
}

// RunOnlineCtx is RunOnline under a context; see ProfileCtx.
func RunOnlineCtx(ctx context.Context, w *Workload, cfg OnlineConfig) (*RunResult, error) {
	cfg.ctx = ctx
	return RunOnline(w, cfg)
}

// PipelineCtx is Pipeline under a context: every stage honours it —
// the profiling and production runs at iteration/phase boundaries,
// the exact solver every ~64k branch-and-bound nodes. A deadline that
// expires inside a non-strict exact solve does not fail the pipeline:
// the advise stage degrades to the density waterfall and the report
// carries a Degradation marker.
func PipelineCtx(ctx context.Context, w *Workload, cfg PipelineConfig) (*PipelineResult, error) {
	cfg.ctx = ctx
	return Pipeline(w, cfg)
}

// AdviseCtx is Advise under a context: StrategyExactNTier polls ctx
// during the branch-and-bound search; on deadline expiry it degrades
// to the density waterfall (marking the report) unless the strategy
// is StrategyExactStrict, and on plain cancellation it returns an
// ErrCanceled-wrapped error. The greedy strategies complete too fast
// to be worth polling.
func AdviseCtx(ctx context.Context, prof *ObjectProfile, budget int64, strat Strategy) (*PlacementReport, error) {
	if prof == nil {
		return nil, fmt.Errorf("hybridmem: nil profile")
	}
	return advisor.AdviseWarmCtx(ctx, prof.App, advisor.FromProfile(prof), advisor.TwoTier(budget), strat, nil, nil)
}

// AdviseHierarchyCtx is AdviseHierarchy under a context; see
// AdviseCtx.
func AdviseHierarchyCtx(ctx context.Context, prof *ObjectProfile, mc MemoryConfig, strat Strategy) (*PlacementReport, error) {
	if prof == nil {
		return nil, fmt.Errorf("hybridmem: nil profile")
	}
	return advisor.AdviseWarmCtx(ctx, prof.App, advisor.FromProfile(prof), mc, strat, nil, nil)
}
