package hybridmem

import "testing"

// TestPipelineSeedTranslation pins the property the whole framework
// rests on: the profiling run and the production run execute under
// different ASLR layouts (Pipeline offsets the production seed by
// 0x9e37), yet the advisor report — recorded against the profiling
// layout — still matches the production run's call stacks after
// translation, so the same bytes land in fast memory either way.
func TestPipelineSeedTranslation(t *testing.T) {
	w, err := WorkloadByName("minife")
	if err != nil {
		t.Fatal(err)
	}
	m := MachineFor(w)
	const seed = 9
	pr, err := Pipeline(w, PipelineConfig{
		Machine: m, Seed: seed, Budget: 128 * MB, Strategy: StrategyMisses(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Run.HBWHWM == 0 {
		t.Fatal("production run placed nothing despite a non-empty report")
	}
	if pr.Run.PlacementFailures != 0 {
		t.Fatalf("production run had %d placement failures", pr.Run.PlacementFailures)
	}
	// Re-execute under the PROFILING layout: if translation really
	// bridges ASLR, the placement must be byte-identical.
	same, err := Execute(w, pr.Report, InterposeOptions{}, ExecuteConfig{
		Machine: m, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if same.HBWHWM != pr.Run.HBWHWM {
		t.Fatalf("placement differs across ASLR layouts: profiling-layout HWM %d, production-layout HWM %d",
			same.HBWHWM, pr.Run.HBWHWM)
	}
	if same.FOM <= pr.ProfilingRun.FOM {
		t.Fatalf("placed run (%v) not faster than monitored DDR run (%v)", same.FOM, pr.ProfilingRun.FOM)
	}
}

// TestRunBaselineAll drives every comparison placement end to end and
// checks the property that defines each one.
func TestRunBaselineAll(t *testing.T) {
	w, err := WorkloadByName("cgpop")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ExecuteConfig{Machine: MachineFor(w), Seed: 13}

	ddr, err := RunBaseline(w, BaselineDDR, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ddr.HBWHWM != 0 {
		t.Errorf("ddr: fast-memory HWM = %d, want 0", ddr.HBWHWM)
	}
	if ddr.FOM <= 0 {
		t.Errorf("ddr: FOM = %v", ddr.FOM)
	}

	numactl, err := RunBaseline(w, BaselineNumactl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if numactl.HBWHWM == 0 {
		t.Error("numactl: nothing landed in MCDRAM")
	}

	autohbw, err := RunBaseline(w, BaselineAutoHBW, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if autohbw.HBWHWM == 0 {
		t.Error("autohbw: no threshold-passing allocation promoted")
	}

	cache, err := RunBaseline(w, BaselineCacheMode, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cache.MCDRAMCacheHits+cache.MCDRAMCacheMisses == 0 {
		t.Error("cache mode: MCDRAM cache never exercised")
	}
	if cache.HBWHWM != 0 {
		t.Errorf("cache mode: software placed %d bytes, placement should be hardware's", cache.HBWHWM)
	}

	online, err := RunBaseline(w, BaselineOnline, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if online.Policy != "online" {
		t.Errorf("online: policy = %q", online.Policy)
	}
	if online.Epochs == 0 {
		t.Error("online: no epoch boundaries reached")
	}

	if _, err := RunBaseline(w, Baseline(99), cfg); err == nil {
		t.Fatal("unknown baseline accepted")
	}
}

// TestRunOnlineFacade checks the root-package plumbing into the online
// subsystem: budget respected, epochs ticking, and adaptation visible
// on the phase-shifting adversary.
func TestRunOnlineFacade(t *testing.T) {
	w, err := WorkloadByName("phaseshift")
	if err != nil {
		t.Fatal(err)
	}
	m := MachineFor(w)
	res, err := RunOnline(w, OnlineConfig{Machine: m, Seed: 7, Budget: 16 * MB})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != int64(w.Iterations) {
		t.Errorf("epochs = %d, want one per iteration (%d)", res.Epochs, w.Iterations)
	}
	if res.Migrations == 0 || res.MigratedBytes == 0 {
		t.Error("online run did not migrate on the phase-shifting workload")
	}
	if res.MigrationCycles == 0 {
		t.Error("migrations were free — move traffic not charged")
	}
	// Mixed triggers: a refs bound alongside the iteration bound used
	// to overrun the derived TotalEpochs and drive the gate's horizon
	// negative, freezing the placer mid-run; it must keep adapting.
	mixed, err := RunOnline(w, OnlineConfig{
		Machine: m, Seed: 7, Budget: 16 * MB,
		EveryIterations: 4, EveryRefs: 700000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mixed.Migrations == 0 {
		t.Error("mixed epoch triggers froze the placer (negative horizon regression)")
	}
	// A machine without an MCDRAM tier cannot host the placer.
	bad := m
	bad.Tiers = bad.Tiers[:1]
	if _, err := RunOnline(w, OnlineConfig{Machine: bad, Seed: 7}); err == nil {
		t.Error("machine without MCDRAM accepted")
	}
	if _, err := RunOnline(w, OnlineConfig{Machine: m, Seed: 7, Decay: 1.5}); err == nil {
		t.Error("out-of-range decay accepted")
	}
}
