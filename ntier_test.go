package hybridmem_test

import (
	"testing"

	hm "repro"
	"repro/internal/units"
)

// TestNTierWaterfallBeatsTwoTierAndDDR is the acceptance scenario of
// the N-tier refactor, the same run examples/ntier prints: on a
// KNL+Optane rank (DDR 1.5 GB + MCDRAM 256 MB + NVM 8 GB) with a
// workload whose hot set exceeds MCDRAM and whose footprint exceeds
// DDR+MCDRAM, the waterfall advisor must beat both the
// placement-oblivious DDR run AND the two-tier advisor — which, blind
// to the NVM floor, lets its DDR overflow spill warm data down by
// allocation order.
func TestNTierWaterfallBeatsTwoTierAndDDR(t *testing.T) {
	if testing.Short() {
		t.Skip("three full three-tier runs are not -short")
	}
	w := hm.NTierDemoWorkload()
	m := hm.PerRankMachine(hm.KNLOptane(), w.Ranks, w.Threads)
	budget := int64(256 * units.MB)
	cfg := hm.ExecuteConfig{Machine: m, Seed: 42}

	ddr, err := hm.RunBaseline(w, hm.BaselineDDR, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The oblivious run must actually suffer the trap: hot/warm data
	// stranded on the NVM floor by allocation order.
	if ddr.TierHWMs[hm.TierNVM] == 0 {
		t.Fatalf("DDR run never spilled to NVM — the scenario is not exercising the floor (HWMs=%v)", ddr.TierHWMs)
	}

	two, err := hm.Pipeline(w, hm.PipelineConfig{Machine: m, Seed: 42, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	// The two-tier advisor cannot name NVM: its report must be
	// MCDRAM-only, and the run must still spill to NVM as DDR overflow.
	for _, e := range two.Report.Entries {
		if e.Tier != "MCDRAM" {
			t.Fatalf("two-tier report names tier %q", e.Tier)
		}
	}
	if two.Run.TierHWMs[hm.TierNVM] == 0 {
		t.Fatal("two-tier run did not overflow to NVM — DDR capacity is not binding")
	}

	mc := hm.MemoryConfigFor(m, budget)
	if mc.DefaultTier != "DDR" || len(mc.Tiers) != 3 {
		t.Fatalf("MemoryConfigFor = %+v", mc)
	}
	ntier, err := hm.Pipeline(w, hm.PipelineConfig{Machine: m, Seed: 42, Memory: &mc})
	if err != nil {
		t.Fatal(err)
	}
	// The waterfall must banish cold objects to NVM explicitly.
	nvmEntries := 0
	for _, e := range ntier.Report.Entries {
		if e.Tier == "NVM" {
			nvmEntries++
		}
	}
	if nvmEntries == 0 {
		t.Fatalf("waterfall report has no NVM entries: %+v", ntier.Report.Entries)
	}

	if !(ntier.Run.FOM > two.Run.FOM && two.Run.FOM > ddr.FOM) {
		t.Fatalf("placement ordering wrong: waterfall %.3f, two-tier %.3f, ddr %.3f",
			ntier.Run.FOM, two.Run.FOM, ddr.FOM)
	}
}

// TestHBMCXLWaterfall runs the advisor across the second N-tier
// machine shape — HBM fastest, DDR default in the middle, CXL below —
// checking the hierarchy order and that the default tier stays
// implicit.
func TestHBMCXLWaterfall(t *testing.T) {
	m := hm.HBMCXL()
	mc := hm.MemoryConfigFor(m, 8*units.MB)
	if mc.DefaultTier != "DDR" {
		t.Fatalf("default tier = %q", mc.DefaultTier)
	}
	if mc.Tiers[0].Name != "HBM" || mc.Tiers[2].Name != "CXL" {
		t.Fatalf("hierarchy order = %+v", mc.Tiers)
	}
	if mc.Tiers[0].Capacity != 8*units.MB {
		t.Fatalf("fast budget not applied: %+v", mc.Tiers[0])
	}
}
