package hybridmem

// Integration tests for the Section V extensions: partitioned
// placement on a workload with one large, non-uniformly accessed
// object.

import (
	"bytes"
	"testing"
)

// skewedWorkload has a 400 MB array whose accesses concentrate in the
// first eighth (50 MB): too big for a 128 MB budget as a whole, ideal
// for partitioned placement.
func skewedWorkload() *Workload {
	return &Workload{
		Name: "skewed", Program: "skewed", Language: "C", Parallelism: "MPI+OpenMP",
		LinesOfCode: 1000, Ranks: 64, Threads: 4,
		FOMName: "it/s", FOMUnit: "it/s", WorkPerIteration: 1,
		Iterations: 10,
		Objects: []ObjectSpec{
			{Name: "table", Class: Dynamic, Size: 400 * MB,
				SitePath: []string{"main", "setup", "allocTable"}},
			{Name: "work", Class: Dynamic, Size: 20 * MB,
				SitePath: []string{"main", "setup", "allocWork"}},
		},
		IterPhases: []Phase{
			{Routine: "lookup", Instructions: 150000, Touches: []Touch{
				// 1/8 hot fraction: the first 50 MB absorb the misses.
				{Object: "table", Pattern: GatherRandom, Refs: 60000, HotFraction: 0.125},
				{Object: "work", Pattern: Sequential, Refs: 15000},
			}},
		},
	}
}

func TestPartitionedPlacementBeatsWholeObjectAdvising(t *testing.T) {
	w := skewedWorkload()
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	m := PerRankMachine(DefaultKNL(), w.Ranks, w.Threads)
	tr, ddrRun, err := Profile(w, ProfileConfig{Machine: m, Seed: 3, SamplePeriod: 700})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}

	// The hot-range analysis must localize the table's heat.
	hot := AnalyzeHotRanges(prof, tr)
	var tableID string
	for _, o := range prof.Objects {
		if o.MaxSize == 400*MB {
			tableID = o.ID
		}
	}
	hr, ok := hot[tableID]
	if !ok {
		t.Fatal("no hot range for the skewed table")
	}
	if hr.Size > 120*MB {
		t.Fatalf("hot range = %d MB, want ~50 MB (1/8 of 400)", hr.Size/MB)
	}
	if hr.SampleShare < 0.75 {
		t.Fatalf("hot range covers only %.2f of samples", hr.SampleShare)
	}

	const budget = 128 * MB
	// Whole-object advising cannot place the 400 MB table.
	whole, err := Advise(prof, budget, StrategyMisses(0))
	if err != nil {
		t.Fatal(err)
	}
	wholeRun, err := Execute(w, whole, InterposeOptions{}, ExecuteConfig{Machine: m, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Partitioned advising places the table's hot 50 MB.
	part, err := AdvisePartitioned(prof, tr, budget, StrategyMisses(0))
	if err != nil {
		t.Fatal(err)
	}
	foundPart := false
	for _, e := range part.Entries {
		if e.PartSize > 0 {
			foundPart = true
			if e.PartSize >= 400*MB || e.PartSize > budget {
				t.Fatalf("partition size = %d MB", e.PartSize/MB)
			}
		}
	}
	if !foundPart {
		t.Fatal("partitioned advisor produced no partition entry")
	}
	partRun, err := Execute(w, part, InterposeOptions{}, ExecuteConfig{Machine: m, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}

	if partRun.FOM <= wholeRun.FOM {
		t.Errorf("partitioned placement (%v) should beat whole-object advising (%v)",
			partRun.FOM, wholeRun.FOM)
	}
	if partRun.FOM <= ddrRun.FOM {
		t.Errorf("partitioned placement (%v) should beat DDR (%v)", partRun.FOM, ddrRun.FOM)
	}
}

func TestPartitionedReportRoundTrip(t *testing.T) {
	w := skewedWorkload()
	m := PerRankMachine(DefaultKNL(), w.Ranks, w.Threads)
	tr, _, err := Profile(w, ProfileConfig{Machine: m, Seed: 3, SamplePeriod: 700})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AdvisePartitioned(prof, tr, 128*MB, StrategyMisses(0))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != len(rep.Entries) {
		t.Fatalf("entries = %d, want %d", len(got.Entries), len(rep.Entries))
	}
	for i := range got.Entries {
		if got.Entries[i].PartSize != rep.Entries[i].PartSize ||
			got.Entries[i].PartOffset != rep.Entries[i].PartOffset {
			t.Fatalf("partition fields lost in round trip: %+v vs %+v",
				got.Entries[i], rep.Entries[i])
		}
	}
}
