package hybridmem_test

import (
	"bytes"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	hm "repro"
	"repro/internal/units"
)

// localReport computes the advisory report fully in-process through
// the public facade — the byte-level ground truth every daemon answer
// must match.
func localReport(t *testing.T, workload string, seed uint64, refScale float64, budget int64, strategy string) []byte {
	t.Helper()
	w, err := hm.WorkloadByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	m := hm.MachineFor(w)
	tr, _, err := hm.Profile(w, hm.ProfileConfig{Machine: m, Seed: seed, RefScale: refScale})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := hm.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	strat, err := hm.StrategyByName(strategy)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := hm.Advise(prof, budget, strat)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAdvisorDaemonMatchesFacade drives the daemon through the public
// facade: concurrent clients must all receive report bytes identical
// to the in-process Profile→Analyze→Advise path, and a restarted
// daemon over the same cache directory must serve the same bytes from
// disk without recomputing.
func TestAdvisorDaemonMatchesFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon round trips run engine profiles; not -short")
	}
	const (
		workload = "minife"
		seed     = uint64(7)
		refScale = 0.25
		budget   = 64 * units.MB
		strategy = "misses"
	)
	want := localReport(t, workload, seed, refScale, budget, strategy)
	params := hm.AdvisorProfileParams{Seed: seed, RefScale: refScale}

	dir := t.TempDir()
	cache, err := hm.OpenArtifactCache(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, ln, err := hm.ServeAdvisor("127.0.0.1:0", hm.AdvisorServerConfig{Workers: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	const clients = 3
	reports := make([][]byte, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := hm.DialAdvisor(addr)
			if err != nil {
				errs[i] = err
				return
			}
			defer cl.Close()
			res, err := cl.AdviseWorkload(workload, "", params, budget, strategy)
			if err != nil {
				errs[i] = err
				return
			}
			reports[i] = res.ReportBytes
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i, rep := range reports {
		if !bytes.Equal(rep, want) {
			t.Fatalf("client %d: daemon report differs from in-process facade advise:\n--- local ---\n%s\n--- daemon ---\n%s", i, want, rep)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a brand-new server over a brand-new cache handle on the
	// same directory — nothing in memory survives, only the
	// content-addressed artifacts. The advise must come back from disk,
	// byte-identical.
	cache2, err := hm.OpenArtifactCache(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv2, ln2, err := hm.ServeAdvisor("127.0.0.1:0", hm.AdvisorServerConfig{Workers: 2, Cache: cache2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	cl, err := hm.DialAdvisor(ln2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.AdviseWorkload(workload, "", params, budget, strategy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != hm.AdvisorCacheHitDisk {
		t.Fatalf("restarted daemon attribution = %q, want %q (artifacts did not survive the restart)", res.Cache, hm.AdvisorCacheHitDisk)
	}
	if !bytes.Equal(res.ReportBytes, want) {
		t.Fatal("restarted daemon served different report bytes")
	}
}

// cachedSweepGrid is a small budget×strategy plane sharing one
// profiling artifact — the shape the persistent cache tier exists for.
func cachedSweepGrid(t *testing.T) []hm.SweepPoint {
	t.Helper()
	w, err := hm.WorkloadByName("minife")
	if err != nil {
		t.Fatal(err)
	}
	m := hm.MachineFor(w)
	var pts []hm.SweepPoint
	for _, budget := range []int64{32 * units.MB, 128 * units.MB} {
		pts = append(pts, hm.PipelinePoint("m0", w, hm.PipelineConfig{
			Machine: m, Seed: 21, Budget: budget, Strategy: hm.StrategyMisses(0), RefScale: 0.25,
		}))
	}
	pts = append(pts, hm.PipelinePoint("density", w, hm.PipelineConfig{
		Machine: m, Seed: 21, Budget: 64 * units.MB, Strategy: hm.StrategyDensity, RefScale: 0.25,
	}))
	return pts
}

// assertSweepsEqual requires two sweeps' runs and advisor reports to
// be bit-identical cell by cell.
func assertSweepsEqual(t *testing.T, label string, want, got []hm.SweepResult) {
	t.Helper()
	for i := range want {
		if !reflect.DeepEqual(want[i].Run, got[i].Run) {
			t.Errorf("%s: cell %d (%s): run diverged", label, i, want[i].Label)
		}
		var a, b bytes.Buffer
		if err := want[i].Pipeline.Report.Write(&a); err != nil {
			t.Fatal(err)
		}
		if err := got[i].Pipeline.Report.Write(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: cell %d (%s): advisor report diverged:\n--- want ---\n%s\n--- got ---\n%s",
				label, i, want[i].Label, a.String(), b.String())
		}
	}
}

// TestSweepCacheBitIdentical pins the persistent profile tier: a sweep
// over a warm artifact cache — even a corrupted one — must return
// results bit-identical to a cache-less sweep.
func TestSweepCacheBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep grids are not -short")
	}
	pts := cachedSweepGrid(t)
	want, err := hm.RunSweep(pts, hm.SweepOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Cold pass populates the cache.
	dir := t.TempDir()
	cold, err := hm.OpenArtifactCache(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hm.RunSweep(pts, hm.SweepOptions{Workers: 2, Cache: cold})
	if err != nil {
		t.Fatal(err)
	}
	assertSweepsEqual(t, "cold-cache", want, res)
	if st := cold.Stats(); st.Puts == 0 {
		t.Fatalf("cold sweep committed nothing: %+v", st)
	}

	// Warm pass through a FRESH handle — as a separate process would
	// see it. Every profile must come from disk (no misses), results
	// bit-identical.
	warm, err := hm.OpenArtifactCache(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err = hm.RunSweep(pts, hm.SweepOptions{Workers: 2, Cache: warm})
	if err != nil {
		t.Fatal(err)
	}
	assertSweepsEqual(t, "warm-cache", want, res)
	if st := warm.Stats(); st.Hits == 0 || st.Misses != 0 {
		t.Fatalf("warm sweep did not serve the profile from disk: %+v", st)
	}

	// Corrupt the stored trace on disk; the next sweep must detect it,
	// recompute, and still come out bit-identical.
	var corrupted bool
	err = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || d.Name() != "trace.prv" {
			return err
		}
		corrupted = true
		return os.WriteFile(path, []byte("not a trace"), 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !corrupted {
		t.Fatal("no trace.prv artifact found to corrupt")
	}
	dam, err := hm.OpenArtifactCache(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err = hm.RunSweep(pts, hm.SweepOptions{Workers: 2, Cache: dam})
	if err != nil {
		t.Fatal(err)
	}
	assertSweepsEqual(t, "corrupt-cache", want, res)
	if st := dam.Stats(); st.Corrupt == 0 {
		t.Fatalf("corruption went undetected: %+v", st)
	}
}
